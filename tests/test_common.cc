#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/fixed_point.h"
#include "common/math_util.h"
#include "common/prng.h"
#include "common/types.h"

namespace hdnn {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(HDNN_CHECK(1 + 1 == 2) << "unused");
}

TEST(CheckTest, FailingCheckThrowsInvalidArgument) {
  EXPECT_THROW(HDNN_CHECK(false) << "context " << 42, InvalidArgument);
}

TEST(CheckTest, FailingInternalThrowsInternalError) {
  EXPECT_THROW(HDNN_INTERNAL(false) << "bug", InternalError);
}

TEST(CheckTest, MessageIncludesContext) {
  try {
    HDNN_CHECK(false) << "needle-" << 7;
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("needle-7"), std::string::npos);
  }
}

// --- bits ---

TEST(BitsTest, LowMaskBasics) {
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(4), 0xfu);
  EXPECT_EQ(LowMask(64), ~std::uint64_t{0});
}

TEST(BitsTest, SetGetRoundTripLowHalf) {
  Word128 w;
  SetField(w, 3, 7, 0x55);
  EXPECT_EQ(GetField(w, 3, 7), 0x55u);
  EXPECT_EQ(GetField(w, 0, 3), 0u);
  EXPECT_EQ(GetField(w, 10, 10), 0u);
}

TEST(BitsTest, SetGetRoundTripHighHalf) {
  Word128 w;
  SetField(w, 100, 20, 0xabcde);
  EXPECT_EQ(GetField(w, 100, 20), 0xabcdeu);
}

TEST(BitsTest, FieldStraddlingBoundary) {
  Word128 w;
  SetField(w, 60, 12, 0xfff);
  EXPECT_EQ(GetField(w, 60, 12), 0xfffu);
  EXPECT_EQ(w.lo >> 60, 0xfu);
  EXPECT_EQ(w.hi & 0xff, 0xffu);
}

TEST(BitsTest, OverwriteDoesNotDisturbNeighbours) {
  Word128 w;
  SetField(w, 0, 8, 0xaa);
  SetField(w, 8, 8, 0xbb);
  SetField(w, 16, 8, 0xcc);
  SetField(w, 8, 8, 0x11);
  EXPECT_EQ(GetField(w, 0, 8), 0xaau);
  EXPECT_EQ(GetField(w, 8, 8), 0x11u);
  EXPECT_EQ(GetField(w, 16, 8), 0xccu);
}

TEST(BitsTest, ValueTooWideThrows) {
  Word128 w;
  EXPECT_THROW(SetField(w, 0, 4, 16), InvalidArgument);
}

TEST(BitsTest, OutOfRangeFieldThrows) {
  Word128 w;
  EXPECT_THROW(SetField(w, 120, 10, 1), InvalidArgument);
  EXPECT_THROW(GetField(w, -1, 4), InvalidArgument);
}

class BitsRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitsRandomRoundTrip, RandomFieldsRoundTrip) {
  Prng prng(static_cast<std::uint64_t>(GetParam()));
  for (int iter = 0; iter < 200; ++iter) {
    const int width = static_cast<int>(prng.NextInt(1, 64));
    const int pos = static_cast<int>(prng.NextInt(0, 128 - width));
    const std::uint64_t value = prng.NextU64() & LowMask(width);
    Word128 w;
    w.lo = prng.NextU64();
    w.hi = prng.NextU64();
    SetField(w, pos, width, value);
    EXPECT_EQ(GetField(w, pos, width), value)
        << "pos=" << pos << " width=" << width;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitsRandomRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- fixed point ---

TEST(FixedPointTest, SignedRange) {
  EXPECT_EQ(SignedRangeOf(8).min, -128);
  EXPECT_EQ(SignedRangeOf(8).max, 127);
  EXPECT_EQ(SignedRangeOf(12).min, -2048);
  EXPECT_EQ(SignedRangeOf(12).max, 2047);
}

TEST(FixedPointTest, SaturateClamps) {
  EXPECT_EQ(SaturateSigned(1000, 8), 127);
  EXPECT_EQ(SaturateSigned(-1000, 8), -128);
  EXPECT_EQ(SaturateSigned(100, 8), 100);
}

TEST(FixedPointTest, RoundingShiftHalfAwayFromZero) {
  EXPECT_EQ(RoundingShiftRight(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(RoundingShiftRight(-5, 1), -3);  // -2.5 -> -3
  EXPECT_EQ(RoundingShiftRight(4, 1), 2);
  EXPECT_EQ(RoundingShiftRight(-4, 1), -2);
  EXPECT_EQ(RoundingShiftRight(7, 2), 2);    // 1.75 -> 2
  EXPECT_EQ(RoundingShiftRight(9, 0), 9);
}

TEST(FixedPointTest, RequantizeCombinesShiftAndSaturate) {
  EXPECT_EQ(Requantize(1 << 20, 4, 12), 2047);
  EXPECT_EQ(Requantize(-(1 << 20), 4, 12), -2048);
  EXPECT_EQ(Requantize(160, 4, 12), 10);
}

TEST(FixedPointTest, QuantizeValueSaturationEdges) {
  // Q1.6 in 8 bits: representable span is [-2.0, 1.984375].
  EXPECT_EQ(QuantizeValue(1.984375, 6, 8), 127);
  EXPECT_EQ(QuantizeValue(2.0, 6, 8), 127);      // just past the edge
  EXPECT_EQ(QuantizeValue(1e18, 6, 8), 127);     // far past the edge
  EXPECT_EQ(QuantizeValue(-2.0, 6, 8), -128);    // min is exactly on-grid
  EXPECT_EQ(QuantizeValue(-2.1, 6, 8), -128);
  EXPECT_EQ(QuantizeValue(-1e18, 6, 8), -128);
}

TEST(FixedPointTest, QuantizeValueRoundsHalfAwayFromZero) {
  // 0.5-ULP ties at frac_bits=0: 0.5 -> 1, 1.5 -> 2, and symmetrically
  // -0.5 -> -1, -1.5 -> -2 (away from zero, NOT to-even and NOT floor).
  EXPECT_EQ(QuantizeValue(0.5, 0, 8), 1);
  EXPECT_EQ(QuantizeValue(1.5, 0, 8), 2);
  EXPECT_EQ(QuantizeValue(-0.5, 0, 8), -1);
  EXPECT_EQ(QuantizeValue(-1.5, 0, 8), -2);
  // Ties on a finer grid: 3/256 is halfway between 1 and 2 at Q.7.
  EXPECT_EQ(QuantizeValue(3.0 / 256.0, 7, 8), 2);
  EXPECT_EQ(QuantizeValue(-3.0 / 256.0, 7, 8), -2);
}

TEST(FixedPointTest, DequantizeValueIsExactInverseOnGrid) {
  for (int frac : {0, 3, 6, 10}) {
    for (std::int64_t q : {-128ll, -17ll, -1ll, 0ll, 1ll, 42ll, 127ll}) {
      const double v = DequantizeValue(q, frac);
      EXPECT_EQ(QuantizeValue(v, frac, 8), q) << "frac=" << frac;
    }
  }
}

TEST(FixedPointTest, QuantizeDequantizeRoundTripWithinHalfStep) {
  // Property: on in-range values the round-trip error is <= step/2, with
  // equality only at ties — checked across grids including edge values.
  for (int frac : {0, 2, 6}) {
    const double step = 1.0 / static_cast<double>(1 << frac);
    for (double v = -1.9; v < 1.9; v += 0.0437) {
      const std::int64_t q = QuantizeValue(v, frac, 8);
      EXPECT_LE(std::abs(DequantizeValue(q, frac) - v), step / 2 + 1e-12)
          << "frac=" << frac << " v=" << v;
    }
  }
}

TEST(FixedPointTest, RoundingShiftAtInt64Boundaries) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  // -2^63 / 2^s is exact: no rounding term survives.
  EXPECT_EQ(RoundingShiftRight(kMin, 1), kMin / 2);
  EXPECT_EQ(RoundingShiftRight(kMin, 8), kMin / 256);
  EXPECT_EQ(RoundingShiftRight(kMin, 62), -2);
  // (2^63 - 1 + 2^(s-1)) >> s == 2^(63-s) exactly (half rounds away).
  EXPECT_EQ(RoundingShiftRight(kMax, 1), std::int64_t{1} << 62);
  EXPECT_EQ(RoundingShiftRight(kMax, 8), std::int64_t{1} << 55);
  EXPECT_EQ(RoundingShiftRight(kMax, 62), 2);
  EXPECT_EQ(RoundingShiftRight(kMin + 1, 1), kMin / 2);  // -(2^62 - 0.5) -> -2^62
  EXPECT_EQ(RoundingShiftRight(kMax - 1, 1), (std::int64_t{1} << 62) - 1);
}

TEST(FixedPointTest, RequantizeSaturationEdges) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(Requantize(kMax, 0, 16), 32767);
  EXPECT_EQ(Requantize(kMin, 0, 16), -32768);
  EXPECT_EQ(Requantize(kMax, 40, 12), 2047);
  EXPECT_EQ(Requantize(kMin, 40, 12), -2048);
  // Values that shift down to exactly the representable bounds pass through.
  EXPECT_EQ(Requantize(std::int64_t{2047} << 10, 10, 12), 2047);
  EXPECT_EQ(Requantize(std::int64_t{-2048} << 10, 10, 12), -2048);
  // One LSB past the bound saturates.
  EXPECT_EQ(Requantize((std::int64_t{2047} << 10) + (1 << 10), 10, 12), 2047);
  EXPECT_EQ(Requantize((std::int64_t{-2048} << 10) - (1 << 10), 10, 12), -2048);
}

TEST(FixedPointTest, QuantizeDequantizeRoundTrip) {
  for (double v : {0.0, 1.0, -1.5, 0.015625, 3.999, -7.25}) {
    const std::int64_t q = QuantizeValue(v, 6, 12);
    EXPECT_NEAR(DequantizeValue(q, 6), v, 1.0 / 64 / 2 + 1e-12) << v;
  }
}

TEST(FixedPointTest, QuantizeSaturates) {
  EXPECT_EQ(QuantizeValue(1000.0, 6, 12), 2047);
  EXPECT_EQ(QuantizeValue(-1000.0, 6, 12), -2048);
}

// --- math util ---

TEST(MathUtilTest, CeilDivAndRoundUp) {
  EXPECT_EQ(CeilDiv(7, 2), 4);
  EXPECT_EQ(CeilDiv(8, 2), 4);
  EXPECT_EQ(CeilDiv(1, 4), 1);
  EXPECT_EQ(RoundUp(7, 4), 8);
  EXPECT_EQ(RoundUp(8, 4), 8);
}

TEST(MathUtilTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(12));
  EXPECT_EQ(NextPowerOfTwo(5), 8);
  EXPECT_EQ(NextPowerOfTwo(8), 8);
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(9), 3);
}

// --- prng ---

TEST(PrngTest, DeterministicAcrossInstances) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(PrngTest, IntRangeRespected) {
  Prng prng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = prng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(PrngTest, IntFullInt64SpanDoesNotDivideByZero) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Prng prng(11);
  // Width kMax - kMin + 1 == 2^64 wraps to 0; the draw must still be valid
  // (any int64 value) and deterministic.
  Prng reference(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(prng.NextInt(kMin, kMax),
              static_cast<std::int64_t>(reference.NextU64()));
  }
}

TEST(PrngTest, IntHugeSpansStayInRange) {
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  Prng prng(13);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t a = prng.NextInt(kMin, 0);
    EXPECT_LE(a, 0);
    const std::int64_t b = prng.NextInt(-1, kMax);
    EXPECT_GE(b, -1);
    const std::int64_t c = prng.NextInt(kMin + 1, kMax);  // span 2^64 - 1
    EXPECT_GE(c, kMin + 1);
  }
}

TEST(PrngTest, ForkIsReproducible) {
  const Prng root(2026);
  Prng a = root.Fork(7);
  Prng b = root.Fork(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(PrngTest, ForkLeavesParentSequenceUnchanged) {
  Prng forked(99);
  Prng plain(99);
  (void)forked.Fork(0);
  (void)forked.Fork(123456789);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(forked.NextU64(), plain.NextU64());
}

TEST(PrngTest, ForkStreamsAreDisjoint) {
  // Distinct stream ids (including adjacent ones, the likely shard layout)
  // must give decorrelated sequences: across many streams and draws no two
  // streams may collide on the same draw index, and child streams must not
  // replay the parent.
  Prng root(1);
  std::vector<std::uint64_t> parent_draws;
  for (int i = 0; i < 64; ++i) parent_draws.push_back(root.NextU64());
  const Prng base(1);
  std::set<std::uint64_t> seen(parent_draws.begin(), parent_draws.end());
  for (std::uint64_t id = 0; id < 64; ++id) {
    Prng stream = base.Fork(id);
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t v = stream.NextU64();
      EXPECT_TRUE(seen.insert(v).second)
          << "stream " << id << " draw " << i << " collided";
    }
  }
}

TEST(PrngTest, ForkDependsOnParentState) {
  // The same stream id forked from different parent states must not yield
  // the same child stream (fork is keyed on (state, id), not id alone).
  Prng a(5), b(5);
  (void)b.NextU64();  // advance b's state
  Prng child_a = Prng(5).Fork(3);
  Prng child_b = b.Fork(3);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (child_a.NextU64() == child_b.NextU64()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(PrngTest, IntSmallSpanSequenceMatchesModuloGolden) {
  // For spans far below 2^64 the rejection zone is ~span/2^64, so the
  // sequence must equal the historical plain-modulo draws.
  Prng prng(42);
  Prng reference(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(prng.NextInt(-256, 255),
              -256 + static_cast<std::int64_t>(reference.NextU64() % 512));
  }
}

TEST(PrngTest, DegenerateSpanIsConstant) {
  Prng prng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(prng.NextInt(17, 17), 17);
}

TEST(PrngTest, InvertedRangeThrows) {
  Prng prng(3);
  EXPECT_THROW(prng.NextInt(5, 3), InvalidArgument);
  EXPECT_THROW(prng.NextInt(0, -1), InvalidArgument);
}

TEST(PrngTest, DoubleInUnitInterval) {
  Prng prng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = prng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

// --- types ---

TEST(TypesTest, AccelConfigValidation) {
  AccelConfig cfg;
  EXPECT_NO_THROW(cfg.Validate());
  cfg.pt = 5;
  EXPECT_THROW(cfg.Validate(), InvalidArgument);
  cfg.pt = 6;
  cfg.po = 8;  // violates PI >= PO
  EXPECT_THROW(cfg.Validate(), InvalidArgument);
}

TEST(TypesTest, WinoMDerivedFromPt) {
  AccelConfig cfg;
  cfg.pt = 4;
  EXPECT_EQ(cfg.wino_m(), 2);
  cfg.pt = 6;
  EXPECT_EQ(cfg.wino_m(), 4);
}

TEST(TypesTest, ModeAndDataflowStrings) {
  EXPECT_EQ(ConvModeFromString("wino"), ConvMode::kWinograd);
  EXPECT_EQ(ConvModeFromString("spat"), ConvMode::kSpatial);
  EXPECT_EQ(DataflowFromString("is"), Dataflow::kInputStationary);
  EXPECT_EQ(DataflowFromString("ws"), Dataflow::kWeightStationary);
  EXPECT_THROW(ConvModeFromString("fft"), InvalidArgument);
  EXPECT_STREQ(ToString(ConvMode::kWinograd), "wino");
  EXPECT_STREQ(ToString(Dataflow::kWeightStationary), "ws");
}

}  // namespace
}  // namespace hdnn
