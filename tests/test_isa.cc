#include <gtest/gtest.h>

#include "common/prng.h"
#include "isa/assembler.h"
#include "isa/codec.h"

namespace hdnn {
namespace {

LoadFields SampleLoad(Prng& prng, Opcode op) {
  LoadFields f;
  f.op = op;
  f.dept = static_cast<std::uint8_t>(prng.NextInt(0, 63));
  f.buff_id = static_cast<std::uint8_t>(prng.NextInt(0, 3));
  f.buff_base = static_cast<std::uint32_t>(prng.NextInt(0, (1 << 14) - 1));
  f.dram_base = static_cast<std::uint32_t>(prng.NextInt(0, (1 << 28) - 1));
  f.rows = static_cast<std::uint16_t>(prng.NextInt(0, 255));
  f.cols = static_cast<std::uint16_t>(prng.NextInt(0, 1023));
  f.chan_vecs = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.aux = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.pitch = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.pad_t = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.pad_b = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.pad_l = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.pad_r = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.wino = prng.NextInt(0, 1) != 0;
  f.wino_offset = static_cast<std::uint8_t>(prng.NextInt(0, 7));
  return f;
}

CompFields SampleComp(Prng& prng) {
  CompFields f;
  f.dept = static_cast<std::uint8_t>(prng.NextInt(0, 63));
  f.inp_buff_id = static_cast<std::uint8_t>(prng.NextInt(0, 1));
  f.wgt_buff_id = static_cast<std::uint8_t>(prng.NextInt(0, 1));
  f.out_buff_id = static_cast<std::uint8_t>(prng.NextInt(0, 1));
  f.inp_buff_base = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.out_buff_base = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.wgt_buff_base = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.iw_num = static_cast<std::uint16_t>(prng.NextInt(0, 1023));
  f.ow_num = static_cast<std::uint16_t>(prng.NextInt(0, 1023));
  f.oh_num = static_cast<std::uint8_t>(prng.NextInt(0, 7));
  f.ic_vecs = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.oc_vecs = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.stride = static_cast<std::uint8_t>(prng.NextInt(1, 4));
  f.relu = prng.NextInt(0, 1) != 0;
  f.quan = static_cast<std::uint8_t>(prng.NextInt(0, 31));
  f.wino = prng.NextInt(0, 1) != 0;
  f.wino_offset = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.kh = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.kw = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.base_row = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.base_col = static_cast<std::uint8_t>(prng.NextInt(0, 15));
  f.accum_clear = prng.NextInt(0, 1) != 0;
  f.accum_emit = prng.NextInt(0, 1) != 0;
  return f;
}

SaveFields SampleSave(Prng& prng) {
  SaveFields f;
  f.dept = static_cast<std::uint8_t>(prng.NextInt(0, 63));
  f.buff_id = static_cast<std::uint8_t>(prng.NextInt(0, 3));
  f.buff_base = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.dram_base = static_cast<std::uint32_t>(prng.NextInt(0, (1u << 31) - 1));
  f.rows = static_cast<std::uint8_t>(prng.NextInt(0, 63));
  f.cols = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.oc_vecs = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.layout = static_cast<SaveLayout>(prng.NextInt(0, 3));
  f.pool = static_cast<std::uint8_t>(prng.NextInt(1, 4));
  f.out_h = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.out_w = static_cast<std::uint16_t>(prng.NextInt(0, 4095));
  f.oc_pitch = static_cast<std::uint16_t>(prng.NextInt(0, 8191));
  return f;
}

/// SAVE_RES narrows the geometry fields to fit the residual address; sample
/// within its tighter limits (see codec.cc save_res).
SaveFields SampleSaveRes(Prng& prng) {
  SaveFields f;
  f.dept = static_cast<std::uint8_t>(prng.NextInt(0, 63));
  f.buff_id = static_cast<std::uint8_t>(prng.NextInt(0, 3));
  f.buff_base = static_cast<std::uint16_t>(prng.NextInt(0, 15));
  f.dram_base = static_cast<std::uint32_t>(prng.NextInt(0, (1 << 28) - 1));
  f.rows = static_cast<std::uint8_t>(prng.NextInt(0, 63));
  f.cols = static_cast<std::uint16_t>(prng.NextInt(0, 511));
  f.oc_vecs = static_cast<std::uint16_t>(prng.NextInt(0, 127));
  f.layout = static_cast<SaveLayout>(prng.NextInt(0, 3));
  f.pool = 1;  // residual saves cannot pool
  f.out_h = static_cast<std::uint16_t>(prng.NextInt(0, 1023));
  f.out_w = static_cast<std::uint16_t>(prng.NextInt(0, 1023));
  f.oc_pitch = static_cast<std::uint16_t>(prng.NextInt(0, 1023));
  f.res_add = true;
  f.res_wino = prng.NextInt(0, 1) != 0;
  f.relu = prng.NextInt(0, 1) != 0;
  f.res_dram_base = static_cast<std::uint32_t>(prng.NextInt(0, (1 << 28) - 1));
  return f;
}

class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, LoadInstructionsRoundTrip) {
  Prng prng(GetParam());
  for (int i = 0; i < 100; ++i) {
    for (Opcode op :
         {Opcode::kLoadInp, Opcode::kLoadWgt, Opcode::kLoadBias}) {
      const LoadFields f = SampleLoad(prng, op);
      const InstrFields decoded = Decode(Encode(InstrFields{f}));
      ASSERT_TRUE(std::holds_alternative<LoadFields>(decoded));
      EXPECT_EQ(std::get<LoadFields>(decoded), f);
    }
  }
}

TEST_P(RoundTripTest, CompInstructionsRoundTrip) {
  Prng prng(GetParam() + 100);
  for (int i = 0; i < 200; ++i) {
    const CompFields f = SampleComp(prng);
    const InstrFields decoded = Decode(Encode(InstrFields{f}));
    ASSERT_TRUE(std::holds_alternative<CompFields>(decoded));
    EXPECT_EQ(std::get<CompFields>(decoded), f);
  }
}

TEST_P(RoundTripTest, SaveInstructionsRoundTrip) {
  Prng prng(GetParam() + 200);
  for (int i = 0; i < 200; ++i) {
    const SaveFields f = SampleSave(prng);
    const InstrFields decoded = Decode(Encode(InstrFields{f}));
    ASSERT_TRUE(std::holds_alternative<SaveFields>(decoded));
    EXPECT_EQ(std::get<SaveFields>(decoded), f);
  }
}

TEST_P(RoundTripTest, SaveResInstructionsRoundTrip) {
  Prng prng(GetParam() + 400);
  for (int i = 0; i < 200; ++i) {
    const SaveFields f = SampleSaveRes(prng);
    const Instruction encoded = Encode(InstrFields{f});
    EXPECT_EQ(PeekOpcode(encoded), Opcode::kSaveRes);
    const InstrFields decoded = Decode(encoded);
    ASSERT_TRUE(std::holds_alternative<SaveFields>(decoded));
    EXPECT_EQ(std::get<SaveFields>(decoded), f);
  }
}

TEST(SaveResEncodingTest, OversizedFieldsRejected) {
  Prng prng(9);
  SaveFields base = SampleSaveRes(prng);
  SaveFields wide_pitch = base;
  wide_pitch.oc_pitch = 1024;  // > 10 bits
  EXPECT_THROW(Encode(InstrFields{wide_pitch}), InvalidArgument);
  SaveFields pooled = base;
  pooled.pool = 2;
  EXPECT_THROW(Encode(InstrFields{pooled}), InvalidArgument);
  // Plain SAVE cannot carry the deferred ReLU (COMP fuses it there).
  SaveFields plain_relu = base;
  plain_relu.res_add = false;
  plain_relu.relu = true;
  EXPECT_THROW(Encode(InstrFields{plain_relu}), InvalidArgument);
}

TEST_P(RoundTripTest, AssemblerTextRoundTrip) {
  Prng prng(GetParam() + 300);
  std::vector<Instruction> program;
  for (int i = 0; i < 20; ++i) {
    program.push_back(Encode(InstrFields{SampleLoad(prng, Opcode::kLoadInp)}));
    program.push_back(Encode(InstrFields{SampleLoad(prng, Opcode::kLoadWgt)}));
    program.push_back(Encode(InstrFields{SampleComp(prng)}));
    program.push_back(Encode(InstrFields{SampleSave(prng)}));
    program.push_back(Encode(InstrFields{SampleSaveRes(prng)}));
  }
  program.push_back(Encode(InstrFields{CtrlFields{Opcode::kEnd, 0}}));
  const std::string text = DisassembleProgram(program);
  const std::vector<Instruction> back = AssembleProgram(text);
  ASSERT_EQ(back.size(), program.size());
  for (std::size_t i = 0; i < program.size(); ++i) {
    EXPECT_EQ(back[i], program[i]) << "instruction " << i << ":\n"
                                   << Disassemble(program[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Values(1, 2, 3, 42, 1234));

TEST(CodecTest, FieldOverflowThrows) {
  LoadFields f;
  f.op = Opcode::kLoadInp;
  f.chan_vecs = 5000;  // 12-bit field
  EXPECT_THROW(Encode(InstrFields{f}), InvalidArgument);
}

TEST(CodecTest, CompStrideRangeEnforced) {
  CompFields f;
  f.stride = 5;
  EXPECT_THROW(Encode(InstrFields{f}), InvalidArgument);
  f.stride = 0;
  EXPECT_THROW(Encode(InstrFields{f}), InvalidArgument);
}

TEST(CodecTest, OpcodeNames) {
  EXPECT_STREQ(OpcodeName(Opcode::kLoadInp), "LOAD_INP");
  EXPECT_STREQ(OpcodeName(Opcode::kComp), "COMP");
  EXPECT_STREQ(OpcodeName(Opcode::kEnd), "END");
  EXPECT_STREQ(SaveLayoutName(SaveLayout::kWinoToSpat), "WINO-to-SPAT");
}

TEST(CodecTest, PeekOpcodeRejectsInvalid) {
  Word128 w;
  SetField(w, 124, 4, 13);  // not a defined opcode (11-15 are unassigned)
  EXPECT_THROW(PeekOpcode(w), InvalidArgument);
}

TEST(ValidateProgramTest, AcceptsEndTerminated) {
  std::vector<Instruction> p{Encode(InstrFields{CtrlFields{Opcode::kNop, 0}}),
                             Encode(InstrFields{CtrlFields{Opcode::kEnd, 0}})};
  EXPECT_NO_THROW(ValidateProgram(p));
}

TEST(ValidateProgramTest, RejectsMissingEnd) {
  std::vector<Instruction> p{Encode(InstrFields{CtrlFields{Opcode::kNop, 0}})};
  EXPECT_THROW(ValidateProgram(p), InvalidArgument);
}

TEST(ValidateProgramTest, RejectsTrailingAfterEnd) {
  std::vector<Instruction> p{Encode(InstrFields{CtrlFields{Opcode::kEnd, 0}}),
                             Encode(InstrFields{CtrlFields{Opcode::kNop, 0}})};
  EXPECT_THROW(ValidateProgram(p), InvalidArgument);
}

TEST(ValidateProgramTest, RejectsEmpty) {
  EXPECT_THROW(ValidateProgram({}), InvalidArgument);
}

TEST(AssemblerTest, ParsesMinimalProgram) {
  const std::string text =
      "# a comment\n"
      "LOAD_INP dept=0xa buff=1 base=0 dram=64 rows=4 cols=8 cv=2 aux=8 "
      "pitch=8 pad=1,1,1,1 wino=1\n"
      "END\n";
  const auto program = AssembleProgram(text);
  ASSERT_EQ(program.size(), 2u);
  const auto f = std::get<LoadFields>(Decode(program[0]));
  EXPECT_EQ(f.dept, 0xa);
  EXPECT_EQ(f.rows, 4);
  EXPECT_TRUE(f.wino);
  EXPECT_EQ(f.pad_l, 1);
}

TEST(AssemblerTest, RejectsBadMnemonic) {
  EXPECT_THROW(AssembleProgram("FROBNICATE x=1\n"), ParseError);
}

TEST(AssemblerTest, RejectsMalformedKeyValue) {
  EXPECT_THROW(AssembleProgram("COMP banana\n"), ParseError);
  EXPECT_THROW(AssembleProgram("COMP ow=abc\n"), ParseError);
}

TEST(AssemblerTest, ErrorsIncludeLineNumbers) {
  try {
    AssembleProgram("NOP\nBADOP\n");
    FAIL();
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace hdnn
