// The compiler QA pass: every program the compiler emits must be clean, and
// deliberately corrupted programs must be flagged.
#include <gtest/gtest.h>

#include "compiler/stream_check.h"
#include "dse/search.h"
#include "nn/builders.h"
#include "testing_util.h"

namespace hdnn {
namespace {

using ::hdnn::testing::TestConfig;
using ::hdnn::testing::TestSpec;

CompiledModel CompileTiny(ConvMode mode, Dataflow flow, int pt = 4) {
  const Model m = BuildTinyCnn();
  std::vector<LayerMapping> mapping(
      static_cast<std::size_t>(m.num_layers()), LayerMapping{mode, flow});
  mapping.back() = {ConvMode::kSpatial, Dataflow::kWeightStationary};  // FC
  return Compiler(TestConfig(pt), TestSpec()).Compile(m, mapping);
}

class CompiledStreamTest
    : public ::testing::TestWithParam<std::tuple<ConvMode, Dataflow, int>> {};

TEST_P(CompiledStreamTest, CompilerOutputIsAlwaysClean) {
  const auto& [mode, flow, pt] = GetParam();
  const CompiledModel cm = CompileTiny(mode, flow, pt);
  const StreamCheckReport report = CheckInstructionStream(cm);
  EXPECT_TRUE(report.ok()) << report.violations.front();
  EXPECT_GT(report.comps, 0);
  EXPECT_EQ(report.loads_wgt, report.loads_bias);  // bias rides every block
  EXPECT_NO_THROW(RequireValidStream(cm));
}

INSTANTIATE_TEST_SUITE_P(
    ModesFlows, CompiledStreamTest,
    ::testing::Combine(::testing::Values(ConvMode::kSpatial,
                                         ConvMode::kWinograd),
                       ::testing::Values(Dataflow::kInputStationary,
                                         Dataflow::kWeightStationary),
                       ::testing::Values(4, 6)),
    [](const auto& info) {
      return std::string(ToString(std::get<0>(info.param))) + "_" +
             ToString(std::get<1>(info.param)) + "_pt" +
             std::to_string(std::get<2>(info.param));
    });

TEST(StreamCheckTest, BigModelsAreClean) {
  for (const Model& m : {BuildVgg16ConvOnly(), BuildAlexNetStyle()}) {
    const FpgaSpec spec = Vu9pSpec();
    const DseEngine dse(spec);
    const DseResult r = dse.Explore(m);
    const CompiledModel cm = Compiler(r.config, spec).Compile(m, r.mapping);
    const auto report = CheckInstructionStream(cm);
    EXPECT_TRUE(report.ok()) << m.name() << ": " << report.violations.front();
  }
}

TEST(StreamCheckTest, DetectsDroppedCredit) {
  CompiledModel cm = CompileTiny(ConvMode::kSpatial,
                                 Dataflow::kInputStationary);
  // Strip the input-credit release from the last COMP that has one.
  for (auto it = cm.program.rbegin(); it != cm.program.rend(); ++it) {
    if (PeekOpcode(*it) != Opcode::kComp) continue;
    auto f = std::get<CompFields>(Decode(*it));
    if (!(f.dept & kEmitCredit0)) continue;
    f.dept &= static_cast<std::uint8_t>(~kEmitCredit0);
    *it = Encode(f);
    break;
  }
  const auto report = CheckInstructionStream(cm);
  EXPECT_FALSE(report.ok());
}

TEST(StreamCheckTest, DetectsDoubleEmit) {
  CompiledModel cm = CompileTiny(ConvMode::kSpatial,
                                 Dataflow::kInputStationary);
  for (auto& instr : cm.program) {
    if (PeekOpcode(instr) != Opcode::kLoadInp) continue;
    auto f = std::get<LoadFields>(Decode(instr));
    f.dept &= static_cast<std::uint8_t>(~kWaitCredit);  // never take credit
    instr = Encode(f);
  }
  const auto report = CheckInstructionStream(cm);
  EXPECT_FALSE(report.ok());  // credits over-restored at the end
}

TEST(StreamCheckTest, DetectsWrongSaveHalf) {
  CompiledModel cm = CompileTiny(ConvMode::kWinograd,
                                 Dataflow::kInputStationary);
  for (auto& instr : cm.program) {
    if (PeekOpcode(instr) != Opcode::kSave) continue;
    auto f = std::get<SaveFields>(Decode(instr));
    f.buff_id ^= 1;  // flip the ping-pong half
    instr = Encode(f);
    break;
  }
  const auto report = CheckInstructionStream(cm);
  EXPECT_FALSE(report.ok());
}

TEST(StreamCheckTest, DetectsDramOverrun) {
  CompiledModel cm = CompileTiny(ConvMode::kSpatial,
                                 Dataflow::kInputStationary);
  for (auto& instr : cm.program) {
    if (PeekOpcode(instr) != Opcode::kSave) continue;
    auto f = std::get<SaveFields>(Decode(instr));
    f.dram_base = static_cast<std::uint32_t>(cm.total_dram_words + 100);
    instr = Encode(f);
    break;
  }
  const auto report = CheckInstructionStream(cm);
  EXPECT_FALSE(report.ok());
}

TEST(StreamCheckTest, DetectsMissingEnd) {
  CompiledModel cm = CompileTiny(ConvMode::kSpatial,
                                 Dataflow::kInputStationary);
  cm.program.pop_back();
  EXPECT_THROW(CheckInstructionStream(cm), InvalidArgument);
}

}  // namespace
}  // namespace hdnn
