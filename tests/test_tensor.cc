#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/fixed_point.h"
#include "common/prng.h"
#include "tensor/quantize.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace hdnn {
namespace {

TEST(ShapeTest, ElementsAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.elements(), 24);
  EXPECT_EQ(s.dim(1), 3);
}

TEST(ShapeTest, ScalarShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.elements(), 1);
}

TEST(ShapeTest, StridesAreRowMajor) {
  const Shape s{2, 3, 4};
  const auto st = s.strides();
  EXPECT_EQ(st, (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(ShapeTest, FlatIndexMatchesStrides) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.FlatIndex({0, 0, 0}), 0);
  EXPECT_EQ(s.FlatIndex({1, 2, 3}), 23);
  EXPECT_EQ(s.FlatIndex({1, 0, 2}), 14);
}

TEST(ShapeTest, OutOfBoundsCoordinateThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.FlatIndex({2, 0}), InvalidArgument);
  EXPECT_THROW(s.FlatIndex({0, 0, 0}), InvalidArgument);
}

TEST(ShapeTest, NegativeDimThrows) {
  EXPECT_THROW(Shape({-1, 2}), InvalidArgument);
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({1, 2}).ToString(), "[1, 2]");
}

TEST(TensorTest, FillAndFlatAccess) {
  Tensor<int> t(Shape{2, 2}, 7);
  EXPECT_EQ(t.flat(3), 7);
  t.Fill(1);
  EXPECT_EQ(t.flat(0), 1);
}

TEST(TensorTest, ChwAccessors) {
  Tensor<int> t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 42;
  EXPECT_EQ(t.at(1, 2, 3), 42);
  EXPECT_EQ(t.flat(1 * 12 + 2 * 4 + 3), 42);
}

TEST(TensorTest, KcrsAccessors) {
  Tensor<int> t(Shape{2, 3, 3, 3});
  t.at(1, 2, 0, 1) = 9;
  EXPECT_EQ(t.at(1, 2, 0, 1), 9);
}

TEST(TensorTest, PaddedAtReturnsZeroOutside) {
  Tensor<int> t(Shape{1, 2, 2}, 5);
  EXPECT_EQ(t.PaddedAt(0, -1, 0), 0);
  EXPECT_EQ(t.PaddedAt(0, 0, 2), 0);
  EXPECT_EQ(t.PaddedAt(0, 1, 1), 5);
}

TEST(TensorTest, WrongRankAccessThrows) {
  Tensor<int> t(Shape{2, 2});
  EXPECT_THROW(t.at(0, 0, 0), InvalidArgument);
}

TEST(TensorTest, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor<int>(Shape{2, 2}, std::vector<int>{1, 2, 3}),
               InvalidArgument);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor<float> a(Shape{2}, 1.0f);
  Tensor<float> b(Shape{2}, 1.0f);
  b.flat(1) = -2.0f;
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 3.0f);
}

TEST(TensorTest, RandomFillDeterministic) {
  Prng p1(3), p2(3);
  Tensor<std::int16_t> a(Shape{100});
  Tensor<std::int16_t> b(Shape{100});
  a.FillRandomInt(p1, -10, 10);
  b.FillRandomInt(p2, -10, 10);
  EXPECT_EQ(a, b);
}

// --- quantisation ---

TEST(QuantizeTest, RoundTripInRange) {
  Prng prng(5);
  Tensor<float> t(Shape{64});
  t.FillRandomReal(prng, -10.0, 10.0);
  const auto q = QuantizeTensor(t, kFeatureQuant);
  const auto d = DequantizeTensor(q, kFeatureQuant);
  EXPECT_LE(MaxAbsDiff(t, d), 0.5 / 64 + 1e-6);
}

TEST(QuantizeTest, SaturatesOutOfRange) {
  Tensor<float> t(Shape{1}, 1e6f);
  const auto q = QuantizeTensor(t, kFeatureQuant);
  EXPECT_EQ(q.flat(0), 2047);
}

TEST(QuantizeTest, ChooseFracBitsAvoidsSaturation) {
  Tensor<float> t(Shape{2});
  t.flat(0) = 100.0f;
  t.flat(1) = -50.0f;
  const QuantSpec spec = ChooseFracBits(t, 8, 7);
  const double limit = 127.0;
  EXPECT_LE(100.0 * (1 << spec.frac_bits), limit * (1 << 0) * 128);
  const auto q = QuantizeTensor(t, spec);
  EXPECT_LT(std::abs(static_cast<double>(q.flat(0))), 128);
  EXPECT_NEAR(DequantizeValue(q.flat(0), spec.frac_bits), 100.0,
              100.0 * 0.05 + 1.0);
}

class QuantWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantWidthTest, ValuesStayInNBitRange) {
  const int bits = GetParam();
  Prng prng(11);
  Tensor<float> t(Shape{256});
  t.FillRandomReal(prng, -1000.0, 1000.0);
  const auto q = QuantizeTensor(t, QuantSpec{bits, 4});
  const auto range = SignedRangeOf(bits);
  for (std::int64_t i = 0; i < q.elements(); ++i) {
    EXPECT_GE(q.flat(i), range.min);
    EXPECT_LE(q.flat(i), range.max);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantWidthTest,
                         ::testing::Values(4, 8, 12, 16));

TEST(QuantizeTest, RejectsBitsOutsideInt16Storage) {
  // QuantizeTensor stores into int16; more than 16 bits would silently
  // truncate the saturated value.
  Tensor<float> t(Shape{1}, 1.0f);
  EXPECT_THROW(QuantizeTensor(t, QuantSpec{17, 4}), InvalidArgument);
  EXPECT_THROW(QuantizeTensor(t, QuantSpec{1, 0}), InvalidArgument);
  EXPECT_THROW(QuantizeTensor(t, QuantSpec{8, -1}), InvalidArgument);
}

TEST(QuantizeTest, ChooseFracBitsRejectsNonFinite) {
  Tensor<float> nan_t(Shape{2});
  nan_t.flat(0) = 1.0f;
  nan_t.flat(1) = std::numeric_limits<float>::quiet_NaN();
  EXPECT_THROW(ChooseFracBits(nan_t, 8, 7), InvalidArgument);
  Tensor<float> inf_t(Shape{1}, std::numeric_limits<float>::infinity());
  EXPECT_THROW(ChooseFracBits(inf_t, 8, 7), InvalidArgument);
}

TEST(QuantizeTest, ChooseFracBitsAllZeroTensorUsesMaxFrac) {
  // An all-zero tensor has no magnitude to bound the grid; the documented
  // fast path picks the finest allowed grid (any grid represents 0 exactly).
  Tensor<float> t(Shape{8});
  const QuantSpec spec = ChooseFracBits(t, 8, 7);
  EXPECT_EQ(spec.bits, 8);
  EXPECT_EQ(spec.frac_bits, 7);
}

TEST(QuantizeTest, ChooseFracBitsForMagnitudeEdges) {
  EXPECT_EQ(ChooseFracBitsForMagnitude(0.0, 8, 7).frac_bits, 7);
  // magnitude 1.0 with 8 bits: 1.0 * 2^6 = 64 <= 127, 1.0 * 2^7 = 128 > 127.
  EXPECT_EQ(ChooseFracBitsForMagnitude(1.0, 8, 7).frac_bits, 6);
  // A huge magnitude cannot be represented even at 0 fraction bits — the
  // chooser still returns its floor (0) and quantisation saturates.
  EXPECT_EQ(ChooseFracBitsForMagnitude(1e9, 8, 7).frac_bits, 0);
  // Tiny magnitudes are capped by max_frac_bits.
  EXPECT_EQ(ChooseFracBitsForMagnitude(1e-9, 8, 7).frac_bits, 7);
}

TEST(QuantizeTest, RoundTripErrorBoundedByHalfUlp) {
  // Property: for values inside the representable range, dequantize(
  // quantize(v)) is within half a grid step of v, for every width/frac.
  Prng prng(13);
  for (int bits : {8, 12, 16}) {
    for (int frac : {0, 3, 6}) {
      const auto range = SignedRangeOf(bits);
      const double step = 1.0 / static_cast<double>(1 << frac);
      const double lo = static_cast<double>(range.min) * step;
      const double hi = static_cast<double>(range.max) * step;
      Tensor<float> t(Shape{256});
      t.FillRandomReal(prng, lo, hi);
      const auto q = QuantizeTensor(t, QuantSpec{bits, frac});
      const auto d = DequantizeTensor(q, QuantSpec{bits, frac});
      for (std::int64_t i = 0; i < t.elements(); ++i) {
        EXPECT_LE(std::abs(static_cast<double>(t.flat(i)) -
                           static_cast<double>(d.flat(i))),
                  step / 2 + 1e-9)
            << "bits=" << bits << " frac=" << frac << " v=" << t.flat(i);
      }
    }
  }
}

}  // namespace
}  // namespace hdnn
