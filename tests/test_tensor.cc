#include <gtest/gtest.h>

#include "common/check.h"
#include "common/fixed_point.h"
#include "common/prng.h"
#include "tensor/quantize.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace hdnn {
namespace {

TEST(ShapeTest, ElementsAndRank) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.elements(), 24);
  EXPECT_EQ(s.dim(1), 3);
}

TEST(ShapeTest, ScalarShape) {
  const Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.elements(), 1);
}

TEST(ShapeTest, StridesAreRowMajor) {
  const Shape s{2, 3, 4};
  const auto st = s.strides();
  EXPECT_EQ(st, (std::vector<std::int64_t>{12, 4, 1}));
}

TEST(ShapeTest, FlatIndexMatchesStrides) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.FlatIndex({0, 0, 0}), 0);
  EXPECT_EQ(s.FlatIndex({1, 2, 3}), 23);
  EXPECT_EQ(s.FlatIndex({1, 0, 2}), 14);
}

TEST(ShapeTest, OutOfBoundsCoordinateThrows) {
  const Shape s{2, 3};
  EXPECT_THROW(s.FlatIndex({2, 0}), InvalidArgument);
  EXPECT_THROW(s.FlatIndex({0, 0, 0}), InvalidArgument);
}

TEST(ShapeTest, NegativeDimThrows) {
  EXPECT_THROW(Shape({-1, 2}), InvalidArgument);
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ(Shape({1, 2}), Shape({1, 2}));
  EXPECT_NE(Shape({1, 2}), Shape({2, 1}));
  EXPECT_EQ(Shape({1, 2}).ToString(), "[1, 2]");
}

TEST(TensorTest, FillAndFlatAccess) {
  Tensor<int> t(Shape{2, 2}, 7);
  EXPECT_EQ(t.flat(3), 7);
  t.Fill(1);
  EXPECT_EQ(t.flat(0), 1);
}

TEST(TensorTest, ChwAccessors) {
  Tensor<int> t(Shape{2, 3, 4});
  t.at(1, 2, 3) = 42;
  EXPECT_EQ(t.at(1, 2, 3), 42);
  EXPECT_EQ(t.flat(1 * 12 + 2 * 4 + 3), 42);
}

TEST(TensorTest, KcrsAccessors) {
  Tensor<int> t(Shape{2, 3, 3, 3});
  t.at(1, 2, 0, 1) = 9;
  EXPECT_EQ(t.at(1, 2, 0, 1), 9);
}

TEST(TensorTest, PaddedAtReturnsZeroOutside) {
  Tensor<int> t(Shape{1, 2, 2}, 5);
  EXPECT_EQ(t.PaddedAt(0, -1, 0), 0);
  EXPECT_EQ(t.PaddedAt(0, 0, 2), 0);
  EXPECT_EQ(t.PaddedAt(0, 1, 1), 5);
}

TEST(TensorTest, WrongRankAccessThrows) {
  Tensor<int> t(Shape{2, 2});
  EXPECT_THROW(t.at(0, 0, 0), InvalidArgument);
}

TEST(TensorTest, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor<int>(Shape{2, 2}, std::vector<int>{1, 2, 3}),
               InvalidArgument);
}

TEST(TensorTest, MaxAbsDiff) {
  Tensor<float> a(Shape{2}, 1.0f);
  Tensor<float> b(Shape{2}, 1.0f);
  b.flat(1) = -2.0f;
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 3.0f);
}

TEST(TensorTest, RandomFillDeterministic) {
  Prng p1(3), p2(3);
  Tensor<std::int16_t> a(Shape{100});
  Tensor<std::int16_t> b(Shape{100});
  a.FillRandomInt(p1, -10, 10);
  b.FillRandomInt(p2, -10, 10);
  EXPECT_EQ(a, b);
}

// --- quantisation ---

TEST(QuantizeTest, RoundTripInRange) {
  Prng prng(5);
  Tensor<float> t(Shape{64});
  t.FillRandomReal(prng, -10.0, 10.0);
  const auto q = QuantizeTensor(t, kFeatureQuant);
  const auto d = DequantizeTensor(q, kFeatureQuant);
  EXPECT_LE(MaxAbsDiff(t, d), 0.5 / 64 + 1e-6);
}

TEST(QuantizeTest, SaturatesOutOfRange) {
  Tensor<float> t(Shape{1}, 1e6f);
  const auto q = QuantizeTensor(t, kFeatureQuant);
  EXPECT_EQ(q.flat(0), 2047);
}

TEST(QuantizeTest, ChooseFracBitsAvoidsSaturation) {
  Tensor<float> t(Shape{2});
  t.flat(0) = 100.0f;
  t.flat(1) = -50.0f;
  const QuantSpec spec = ChooseFracBits(t, 8, 7);
  const double limit = 127.0;
  EXPECT_LE(100.0 * (1 << spec.frac_bits), limit * (1 << 0) * 128);
  const auto q = QuantizeTensor(t, spec);
  EXPECT_LT(std::abs(static_cast<double>(q.flat(0))), 128);
  EXPECT_NEAR(DequantizeValue(q.flat(0), spec.frac_bits), 100.0,
              100.0 * 0.05 + 1.0);
}

class QuantWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantWidthTest, ValuesStayInNBitRange) {
  const int bits = GetParam();
  Prng prng(11);
  Tensor<float> t(Shape{256});
  t.FillRandomReal(prng, -1000.0, 1000.0);
  const auto q = QuantizeTensor(t, QuantSpec{bits, 4});
  const auto range = SignedRangeOf(bits);
  for (std::int64_t i = 0; i < q.elements(); ++i) {
    EXPECT_GE(q.flat(i), range.min);
    EXPECT_LE(q.flat(i), range.max);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantWidthTest,
                         ::testing::Values(4, 8, 12, 16));

}  // namespace
}  // namespace hdnn
