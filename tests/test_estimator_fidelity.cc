// Estimator-fidelity regression net: the Eq. 12-15 analytical latency model
// must keep tracking the cycle-approximate simulator (the repo's stand-in
// for the paper's Sec. 6.2 "4.27% / 4.03% error" measurement, promoted from
// bench/estimation_error into ctest so model drift fails CI instead of only
// skewing a bench report).
//
// Tolerances are pinned from the measured state of the model with ~2x
// headroom. The additive control/burst penalty terms dominate sub-
// ~1.5k-cycle layers (TinyCnn's 10-output FC simulates in ~170 cycles), so
// the per-layer bound applies to layers of meaningful size and the
// end-to-end bound covers everything — exactly how the paper reports it.
#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compiler.h"
#include "dse/search.h"
#include "estimator/latency_model.h"
#include "nn/builders.h"
#include "runtime/runtime.h"
#include "testing_util.h"

namespace hdnn {
namespace {

using ::hdnn::testing::TestConfig;
using ::hdnn::testing::TestSpec;

struct FidelityReport {
  double worst_large_layer_error = 0;  ///< layers with sim >= 1500 cycles
  double end_to_end_error = 0;
  int large_layers = 0;
};

FidelityReport MeasureFidelity(const Model& model, const AccelConfig& cfg,
                               const FpgaSpec& spec,
                               bool fuse_segments = false) {
  // The mapping the DSE would deploy on this config; the compiler may still
  // override dataflows for legality, so fidelity is judged on the final
  // plans (same as bench/estimation_error). Fused segments are held off so
  // the tolerances keep measuring the historical per-layer calibration; the
  // fused datapath has its own fidelity pin below.
  const DseEngine dse(spec);
  double unused = 0;
  DseOptions opts;
  opts.fuse_segments = fuse_segments;
  const std::vector<LayerMapping> mapping =
      dse.BestMapping(model, cfg, opts, &unused);
  const Compiler compiler(cfg, spec);
  CompiledModel cm = compiler.Compile(model, mapping);
  Runtime runtime(cfg, spec);
  const RunReport rep =
      runtime.Execute(model, cm, {}, {}, /*functional=*/false);

  FidelityReport report;
  // The effective (post-compiler) mapping, which also carries the fused-
  // segment flags the estimator must price as on-chip hand-offs.
  std::vector<LayerMapping> effective;
  effective.reserve(cm.plans.size());
  for (const LayerPlan& plan : cm.plans) effective.push_back(plan.mapping);
  double est_total = 0;
  for (int i = 0; i < model.num_layers(); ++i) {
    const LayerPlan& plan = cm.plans[static_cast<std::size_t>(i)];
    const double est =
        EstimateLayerLatency(model.layer(i), model.InputOf(i),
                             plan.mapping.mode, plan.mapping.dataflow, cfg,
                             spec, FusionContextOf(model, effective, i))
            .total;
    const double sim = rep.layer_cycles[static_cast<std::size_t>(i)];
    est_total += est;
    EXPECT_GT(sim, 0) << model.layer(i).name;
    if (sim >= 1500) {
      ++report.large_layers;
      report.worst_large_layer_error = std::max(
          report.worst_large_layer_error, std::abs(est - sim) / sim);
    }
  }
  report.end_to_end_error =
      std::abs(est_total - rep.stats.total_cycles) / rep.stats.total_cycles;
  return report;
}

TEST(EstimatorFidelityTest, TinyCnnTracksSimulator) {
  const FidelityReport r =
      MeasureFidelity(BuildTinyCnn(), TestConfig(4), TestSpec());
  ASSERT_GE(r.large_layers, 3);  // the three CONV layers are in-regime
  // Measured: worst large-layer error 16.7%, end-to-end 6.9%.
  EXPECT_LE(r.worst_large_layer_error, 0.30);
  EXPECT_LE(r.end_to_end_error, 0.15);
}

TEST(EstimatorFidelityTest, FusedSegmentsTrackSimulator) {
  // The fused-segment datapath (keep-resident hand-offs) must stay in the
  // same fidelity regime: the estimator elides t_sv/t_ld on fused edges
  // just as the simulator skips the DRAM ports. TinyCnn's small convs sit
  // right at the 1.5k-cycle regime boundary where the additive penalty
  // terms loom large, so its per-layer bound is looser than the unfused
  // pin above.
  // Measured: TinyCnn (3 fused edges) worst 32.0%, e2e 4.4%; ResNetBlock
  // (1 fused edge) worst 13.8%, e2e 0.5%.
  const FidelityReport tiny = MeasureFidelity(BuildTinyCnn(), TestConfig(4),
                                              TestSpec(), /*fuse=*/true);
  EXPECT_LE(tiny.worst_large_layer_error, 0.45);
  EXPECT_LE(tiny.end_to_end_error, 0.10);
  const FidelityReport block = MeasureFidelity(
      BuildTinyResNetBlock(), TestConfig(4), TestSpec(), /*fuse=*/true);
  EXPECT_LE(block.worst_large_layer_error, 0.25);
  EXPECT_LE(block.end_to_end_error, 0.05);
}

TEST(EstimatorFidelityTest, ResNetBlockTracksSimulator) {
  const FidelityReport r =
      MeasureFidelity(BuildTinyResNetBlock(), TestConfig(4), TestSpec());
  ASSERT_EQ(r.large_layers, 3);  // 1x1/s2 projection + both 3x3 bodies
  // Measured: worst layer error 9.9% (the stride-2 projection), end-to-end
  // 0.02%.
  EXPECT_LE(r.worst_large_layer_error, 0.20);
  EXPECT_LE(r.end_to_end_error, 0.05);
}

TEST(EstimatorFidelityTest, ResidualBlockTracksSimulator) {
  // The true residual block: the estimator must charge the SAVE stage for
  // the skip-tensor DRAM reads (Eq. 12-15 extension) or the residual layer
  // drifts optimistic and the Pareto search lies on ResNet. Only the
  // residual layer itself (bodyb, ~1.8k cycles) is in-regime on this tiny
  // block; the whole model is sub-5k cycles, so the end-to-end figure is
  // penalty-term dominated and bounded loosely.
  // Measured: worst large-layer error 10.5% (bodyb), end-to-end 15.2%.
  const FidelityReport r =
      MeasureFidelity(BuildTinyResidualBlock(), TestConfig(4), TestSpec());
  ASSERT_GE(r.large_layers, 1);
  EXPECT_LE(r.worst_large_layer_error, 0.25);
  EXPECT_LE(r.end_to_end_error, 0.30);
}

TEST(EstimatorFidelityTest, ResidualAddsSaveTraffic) {
  // Same layer geometry, with and without a residual edge: the residual
  // variant must cost strictly more SAVE time and more total cycles.
  const Model m = BuildTinyResidualBlock();
  const int b = m.IndexOf("bodyb");
  ASSERT_GE(b, 0);
  ConvLayer with = m.layer(b);
  ConvLayer without = with;
  without.add.clear();
  const FmapShape in = m.InputOf(b);
  const auto lw = EstimateLayerLatency(with, in, ConvMode::kSpatial,
                                       Dataflow::kInputStationary,
                                       TestConfig(4), TestSpec());
  const auto lo = EstimateLayerLatency(without, in, ConvMode::kSpatial,
                                       Dataflow::kInputStationary,
                                       TestConfig(4), TestSpec());
  EXPECT_GT(lw.t_sv, lo.t_sv);
  EXPECT_NEAR(lw.t_sv, 2 * lo.t_sv, 1e-6) << "skip read mirrors the write";
  EXPECT_GT(lw.total, lo.total);
}

TEST(EstimatorFidelityTest, EstimatedCyclesAreLayerSums) {
  // DseResult.estimated_cycles must equal the sum of its per-layer model
  // queries — the invariant every fidelity comparison above leans on.
  const FpgaSpec spec = TestSpec();
  const Model model = BuildTinyResNetBlock();
  const DseResult r = DseEngine(spec).Explore(model);
  double sum = 0;
  for (int i = 0; i < model.num_layers(); ++i) {
    const LayerMapping& m = r.mapping[static_cast<std::size_t>(i)];
    sum += EstimateLayerLatency(model.layer(i), model.InputOf(i), m.mode,
                                m.dataflow, r.config, spec,
                                FusionContextOf(model, r.mapping, i))
               .total;
  }
  EXPECT_DOUBLE_EQ(r.estimated_cycles, sum);
}

}  // namespace
}  // namespace hdnn
