#include <gtest/gtest.h>

#include "dse/search.h"
#include "nn/builders.h"
#include "platform/fpga_spec.h"

namespace hdnn {
namespace {

TEST(DseCandidatesTest, AllCandidatesSatisfyConstraints) {
  for (const auto* spec : {&Vu9pSpec(), &PynqZ1Spec()}) {
    const DseEngine dse(*spec);
    const auto candidates = dse.EnumerateCandidates(DseOptions{});
    ASSERT_FALSE(candidates.empty()) << spec->name;
    for (const AccelConfig& cfg : candidates) {
      EXPECT_NO_THROW(cfg.Validate());
      EXPECT_GE(cfg.pi, cfg.po);  // Table 2: PI >= PO >= 1
      EXPECT_TRUE(cfg.pt == 4 || cfg.pt == 6);
      const auto impl =
          ImplementationResources(cfg, *spec, DefaultProfile());
      EXPECT_TRUE(FitsDeviceLimits(impl, *spec)) << cfg.ToString();
      EXPECT_TRUE(FitsPerDie(impl, cfg, *spec)) << cfg.ToString();
    }
  }
}

TEST(DseCandidatesTest, PynqHasFewerCandidatesThanVu9p) {
  const auto small =
      DseEngine(PynqZ1Spec()).EnumerateCandidates(DseOptions{});
  const auto big = DseEngine(Vu9pSpec()).EnumerateCandidates(DseOptions{});
  EXPECT_LT(small.size(), big.size());
}

TEST(DseExploreTest, Vu9pReproducesPaperDesignPoint) {
  // Paper Sec. 6.1: six instances with PI=4, PO=4, PT=6 on the VU9P.
  const DseEngine dse(Vu9pSpec());
  const DseResult r = dse.Explore(BuildVgg16ConvOnly());
  EXPECT_EQ(r.config.pi, 4);
  EXPECT_EQ(r.config.po, 4);
  EXPECT_EQ(r.config.pt, 6);
  EXPECT_EQ(r.config.ni, 6);
}

TEST(DseExploreTest, PynqReproducesPaperDesignPoint) {
  // Paper Sec. 6.1: one instance with PI=4, PO=4, PT=4 on the PYNQ-Z1.
  const DseEngine dse(PynqZ1Spec());
  const DseResult r = dse.Explore(BuildVgg16ConvOnly());
  EXPECT_EQ(r.config.pi, 4);
  EXPECT_EQ(r.config.po, 4);
  EXPECT_EQ(r.config.pt, 4);
  EXPECT_EQ(r.config.ni, 1);
}

TEST(DseExploreTest, Vgg16SelectsWinogradEverywhere) {
  // Paper Sec. 6.2: "the DSE selects all CONV layers of VGG16 to be
  // implemented in Winograd mode due to the sufficient memory bandwidth".
  for (const auto* spec : {&Vu9pSpec(), &PynqZ1Spec()}) {
    const DseResult r = DseEngine(*spec).Explore(BuildVgg16ConvOnly());
    for (const LayerMapping& m : r.mapping) {
      EXPECT_EQ(m.mode, ConvMode::kWinograd) << spec->name;
    }
  }
}

TEST(DseExploreTest, BandwidthStarvationFlipsToSpatial) {
  // Paper Sec. 6.2: "in other scenarios (e.g., IoT applications) where the
  // available memory bandwidth is limited ... Spatial CONV may outperform
  // Winograd."
  FpgaSpec iot = PynqZ1Spec();
  iot.dram_bandwidth_gbps = 0.08;
  const DseResult r = DseEngine(iot).Explore(BuildVgg16ConvOnly());
  int spatial = 0;
  for (const LayerMapping& m : r.mapping) {
    spatial += m.mode == ConvMode::kSpatial;
  }
  EXPECT_GT(spatial, 0) << "starved bandwidth should favour Spatial somewhere";
}

TEST(DseExploreTest, SpatialOnlyOptionDisablesWinograd) {
  DseOptions opts;
  opts.allow_winograd = false;
  const DseResult r = DseEngine(Vu9pSpec()).Explore(BuildVgg16ConvOnly(), opts);
  for (const LayerMapping& m : r.mapping) {
    EXPECT_EQ(m.mode, ConvMode::kSpatial);
  }
}

TEST(DseExploreTest, StridedLayersNeverWinograd) {
  const DseResult r = DseEngine(Vu9pSpec()).Explore(BuildAlexNetStyle());
  EXPECT_EQ(r.mapping[0].mode, ConvMode::kSpatial);  // conv1 stride 4
}

TEST(DseExploreTest, ObjectiveIsCyclesOverInstances) {
  const DseResult r = DseEngine(Vu9pSpec()).Explore(BuildTinyCnn());
  EXPECT_NEAR(r.objective, r.estimated_cycles / r.config.ni, 1e-6);
}

TEST(DseExploreTest, BestMappingMatchesPerLayerMinimum) {
  const Model m = BuildTinyCnn();
  const DseEngine dse(PynqZ1Spec());
  AccelConfig cfg;
  cfg.pi = cfg.po = 4;
  cfg.pt = 4;
  double total = 0;
  // The brute force below prices every layer unfused, so the fused-segment
  // pass (which beats per-layer minima by construction) must stay off.
  DseOptions opts;
  opts.fuse_segments = false;
  const auto mapping = dse.BestMapping(m, cfg, opts, &total);
  ASSERT_EQ(static_cast<int>(mapping.size()), m.num_layers());
  // Recompute each layer's best by brute force.
  double brute = 0;
  for (int i = 0; i < m.num_layers(); ++i) {
    double best = 1e300;
    for (ConvMode mode : {ConvMode::kSpatial, ConvMode::kWinograd}) {
      if (mode == ConvMode::kWinograd && !WinogradApplicable(m.layer(i))) {
        continue;
      }
      GroupCounts g;
      try {
        g = ComputeGroups(m.layer(i), m.InputOf(i), mode, cfg);
      } catch (const CapacityError&) {
        continue;
      }
      for (Dataflow flow :
           {Dataflow::kInputStationary, Dataflow::kWeightStationary}) {
        if (g.slices > 1 && flow != Dataflow::kInputStationary) continue;
        if (g.cb > 1 &&
            (flow != Dataflow::kWeightStationary || g.fmap_groups() != 1)) {
          continue;
        }
        best = std::min(best, EstimateLayerLatency(m.layer(i), m.InputOf(i),
                                                   mode, flow, cfg,
                                                   PynqZ1Spec())
                                  .total);
      }
    }
    brute += best;
  }
  EXPECT_NEAR(total, brute, brute * 1e-9);
}

TEST(DseOptionsTest, InvalidOptionsThrowInsteadOfEmptySearch) {
  const DseEngine dse(Vu9pSpec());
  const Model m = BuildTinyCnn();

  DseOptions bad_ni;
  bad_ni.max_ni = 0;
  EXPECT_THROW(dse.Explore(m, bad_ni), InvalidArgument);
  EXPECT_THROW(dse.EnumerateCandidates(bad_ni), InvalidArgument);

  DseOptions bad_pi;
  bad_pi.max_pi = -2;
  EXPECT_THROW(dse.Explore(m, bad_pi), InvalidArgument);
  EXPECT_THROW(dse.ExploreFrontier(m, bad_pi), InvalidArgument);

  DseOptions bad_tie;
  bad_tie.tie_fraction = -0.1;
  EXPECT_THROW(dse.Explore(m, bad_tie), InvalidArgument);

  DseOptions bad_threads;
  bad_threads.num_threads = -1;
  EXPECT_THROW(dse.Explore(m, bad_threads), InvalidArgument);

  AccelConfig cfg;
  double cycles = 0;
  EXPECT_THROW(dse.BestMapping(m, cfg, bad_ni, &cycles), InvalidArgument);
}

TEST(DseOptionsTest, ValidOptionsPassValidation) {
  DseOptions opts;  // defaults
  EXPECT_NO_THROW(opts.Validate());
  opts.max_ni = 1;
  opts.max_pi = 1;
  opts.tie_fraction = 0;
  opts.num_threads = 0;  // 0 = hardware concurrency, explicitly legal
  EXPECT_NO_THROW(opts.Validate());
}

TEST(DseExploreTest, InfeasibleModelThrows) {
  // A model whose minimal working set exceeds any candidate's buffers.
  Model m("monster", FmapShape{4, 1000, 1000});
  ConvLayer l;
  l.name = "wide";
  l.in_channels = 4;
  l.out_channels = 4;
  l.pool = 1;
  m.Append(l);
  FpgaSpec tiny = PynqZ1Spec();
  tiny.bram18 = 16;
  tiny.luts = 2000;
  tiny.dsps = 40;
  EXPECT_THROW(DseEngine(tiny).Explore(m), Error);
}

}  // namespace
}  // namespace hdnn
