// Shared helpers for HybridDNN tests: golden end-to-end execution of a model
// through the compiler + simulator, compared layer-by-layer against the
// refconv / winograd golden libraries.
#ifndef HDNN_TESTS_TESTING_UTIL_H_
#define HDNN_TESTS_TESTING_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/prng.h"
#include "compiler/compiler.h"
#include "compiler/weight_pack.h"
#include "nn/model.h"
#include "platform/fpga_spec.h"
#include "refconv/direct.h"
#include "refconv/pool.h"
#include "runtime/runtime.h"
#include "tensor/tensor.h"
#include "winograd/matrices.h"
#include "winograd/wino_conv.h"

namespace hdnn::testing {

/// A small test platform: single die, modest but sufficient resources,
/// generous bandwidth so functional tests are not scheduling-fragile.
inline FpgaSpec TestSpec() {
  FpgaSpec spec;
  spec.name = "test";
  spec.luts = 400000;
  spec.dsps = 2000;
  spec.bram18 = 2000;
  spec.dies = 1;
  spec.dram_bandwidth_gbps = 12.8;
  spec.dram_channels = 1;
  spec.freq_mhz = 200;
  spec.dsp_pack = 1.0;
  spec.static_watts = 2.0;
  return spec;
}

inline AccelConfig TestConfig(int pt = 4, int pi = 4, int po = 4) {
  AccelConfig cfg;
  cfg.pi = pi;
  cfg.po = po;
  cfg.pt = pt;
  cfg.ni = 1;
  cfg.input_buffer_vectors = 8192;
  cfg.weight_buffer_vectors = 2304;
  cfg.output_buffer_vectors = 8192;
  return cfg;
}

/// Deterministic input in a safe feature range.
inline Tensor<std::int16_t> MakeInput(const FmapShape& shape,
                                      std::uint64_t seed) {
  Tensor<std::int16_t> t(Shape{shape.channels, shape.height, shape.width});
  Prng prng(seed);
  t.FillRandomInt(prng, -256, 255);
  return t;
}

/// Golden execution of the whole model in the quantised domain, layer by
/// layer in topological (append) order, using the *same algorithm* per layer
/// as the accelerator mapping (Winograd layers use the integer Winograd
/// reference with the compiler's u_shift; Spatial layers use the direct
/// reference). Graph-aware: each layer reads the activation its input edge
/// names and residual layers fuse sat(conv + skip) (+ ReLU) before pooling,
/// exactly as the accelerator's SAVE_RES stage does.
inline Tensor<std::int16_t> GoldenForward(
    const Model& model, const ModelWeightsQ& weights,
    const Tensor<std::int16_t>& input,
    const std::vector<LayerMapping>& mapping, const AccelConfig& cfg,
    int base_shift) {
  std::vector<Tensor<std::int16_t>> acts(
      static_cast<std::size_t>(model.num_layers()));
  for (int i = 0; i < model.num_layers(); ++i) {
    const ConvLayer& layer = model.layer(i);
    const FmapShape in = model.InputOf(i);
    const int producer = model.input_index(i);
    Tensor<std::int16_t> act =
        producer < 0 ? input : acts[static_cast<std::size_t>(producer)];
    // Flatten for FC layers (channel-major, matching the WINO DDR layout).
    if (layer.is_fc &&
        (act.shape().dim(1) != 1 || act.shape().dim(2) != 1)) {
      act = Tensor<std::int16_t>(Shape{act.elements(), 1, 1},
                                 std::vector<std::int16_t>(act.storage()));
    }
    HDNN_CHECK(act.shape().dim(0) == in.channels) << "golden shape drift";
    const LayerWeightsQ& lw = weights[static_cast<std::size_t>(i)];
    // Residual layers rectify after the add, so the conv itself runs raw.
    const bool conv_relu = layer.relu && !layer.has_residual();
    Tensor<std::int16_t> conv;
    if (mapping[static_cast<std::size_t>(i)].mode == ConvMode::kWinograd) {
      const int u_shift = WinoParamForPt(cfg.pt).recommended_u_shift();
      conv = Conv2dWinogradQ(act, lw.weights, lw.bias, layer.pad, base_shift,
                             cfg.data_width, conv_relu, cfg.pt, u_shift);
    } else {
      conv = Conv2dDirectQ(act, lw.weights, lw.bias, layer.stride, layer.pad,
                           base_shift, cfg.data_width, conv_relu);
    }
    if (layer.has_residual()) {
      const int res = model.residual_index(i);
      conv = AddResidualQ(conv, acts[static_cast<std::size_t>(res)],
                          cfg.data_width, layer.relu);
    }
    if (layer.pool > 1) conv = MaxPool2dQ(conv, layer.pool);
    acts[static_cast<std::size_t>(i)] = std::move(conv);
  }
  return acts.back();
}

struct EndToEndResult {
  Tensor<std::int16_t> sim_out;
  Tensor<std::int16_t> golden_out;
  RunReport report;
  CompiledModel compiled;
};

/// Compiles and runs `model` on the simulator with the given mapping, and
/// computes the golden result for comparison.
inline EndToEndResult RunEndToEnd(const Model& model, const AccelConfig& cfg,
                                  const FpgaSpec& spec,
                                  std::vector<LayerMapping> mapping,
                                  std::uint64_t seed = 7) {
  const Compiler compiler(cfg, spec);
  EndToEndResult result;
  result.compiled = compiler.Compile(model, mapping);
  const ModelWeightsQ weights = SyntheticWeights(model, seed);
  const Tensor<std::int16_t> input = MakeInput(model.InputOf(0), seed + 1);

  Runtime runtime(cfg, spec);
  result.report = runtime.Execute(model, result.compiled, weights, input,
                                  /*functional=*/true);
  result.sim_out = result.report.output;
  // The compiler may have overridden dataflows (CB/slice legality); use the
  // final plans' modes for the golden run.
  std::vector<LayerMapping> effective;
  for (const LayerPlan& plan : result.compiled.plans) {
    effective.push_back(plan.mapping);
  }
  result.golden_out = GoldenForward(model, weights, input, effective, cfg,
                                    result.compiled.base_shift);
  return result;
}

/// Single-layer convenience wrapper.
inline EndToEndResult RunSingleLayer(const Model& model, ConvMode mode,
                                     Dataflow flow, const AccelConfig& cfg,
                                     std::uint64_t seed = 7) {
  return RunEndToEnd(model, cfg, TestSpec(),
                     std::vector<LayerMapping>(
                         static_cast<std::size_t>(model.num_layers()),
                         LayerMapping{mode, flow}),
                     seed);
}

}  // namespace hdnn::testing

#endif  // HDNN_TESTS_TESTING_UTIL_H_
