// Randomized end-to-end fuzzing of the compiler + simulator pipeline:
// deterministic pseudo-random layer geometries, modes, dataflows and buffer
// sizes, each run validated by the stream checker and compared bit-exactly
// against the golden reference. The strongest regression net in the repo —
// any slab-addressing, handshake or layout bug surfaces here.
#include <gtest/gtest.h>

#include <array>

#include "common/prng.h"
#include "compiler/stream_check.h"
#include "nn/builders.h"
#include "testing_util.h"
#include "winograd/decompose.h"

namespace hdnn {
namespace {

using ::hdnn::testing::RunEndToEnd;
using ::hdnn::testing::TestConfig;
using ::hdnn::testing::TestSpec;

class FuzzPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipelineTest, RandomLayersMatchGolden) {
  Prng prng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    // Random geometry within the supported envelope.
    const int kernel_pick = static_cast<int>(prng.NextInt(0, 3));
    const int kernel = std::array<int, 4>{1, 3, 5, 7}[static_cast<std::size_t>(
        kernel_pick)];
    const int c = static_cast<int>(prng.NextInt(1, 24));
    const int k = static_cast<int>(prng.NextInt(1, 24));
    const int h = static_cast<int>(prng.NextInt(kernel, 20));
    const int w = static_cast<int>(prng.NextInt(kernel, 20));
    const int pad = static_cast<int>(prng.NextInt(0, (kernel - 1) / 2 + 1));
    const bool relu = prng.NextInt(0, 1) != 0;
    int stride = static_cast<int>(prng.NextInt(1, 2));
    if ((h + 2 * pad - kernel) / stride < 0 ||
        (w + 2 * pad - kernel) / stride < 0) {
      stride = 1;
    }
    if (h + 2 * pad < kernel || w + 2 * pad < kernel) continue;

    const Model m =
        BuildSingleConv(c, k, h, w, kernel, stride, pad, relu);

    const ConvMode mode = (stride == 1 && prng.NextInt(0, 1))
                              ? ConvMode::kWinograd
                              : ConvMode::kSpatial;
    Dataflow flow = prng.NextInt(0, 1) ? Dataflow::kWeightStationary
                                       : Dataflow::kInputStationary;
    if (mode == ConvMode::kWinograd && NumKernelSlices(kernel, kernel) > 1) {
      flow = Dataflow::kInputStationary;
    }
    const int pt = prng.NextInt(0, 1) ? 4 : 6;
    AccelConfig cfg = TestConfig(pt);
    // Shrink buffers sometimes to exercise column tiling / K-grouping.
    if (prng.NextInt(0, 2) == 0) {
      cfg.input_buffer_vectors = 512;
      cfg.weight_buffer_vectors = 288;
      cfg.output_buffer_vectors = 1024;
    }

    SCOPED_TRACE(::testing::Message()
                 << "seed=" << GetParam() << " iter=" << iter << " c=" << c
                 << " k=" << k << " h=" << h << " w=" << w << " kern="
                 << kernel << " s=" << stride << " p=" << pad
                 << " mode=" << ToString(mode) << " flow=" << ToString(flow)
                 << " pt=" << pt);
    try {
      auto r = RunEndToEnd(m, cfg, TestSpec(),
                           {LayerMapping{mode, flow}},
                           /*seed=*/GetParam() * 977 + iter);
      EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
      EXPECT_EQ(r.sim_out, r.golden_out);
    } catch (const CapacityError&) {
      // geometry does not fit the shrunken buffers — acceptable outcome
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest,
                         ::testing::Range<std::uint64_t>(1, 13));

class FuzzNetworkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzNetworkTest, RandomThreeLayerNetsMatchGolden) {
  Prng prng(GetParam() * 31337);
  // Chain three random conv layers with compatible channels + random modes.
  const int c0 = static_cast<int>(prng.NextInt(1, 12));
  const int c1 = static_cast<int>(prng.NextInt(1, 16));
  const int c2 = static_cast<int>(prng.NextInt(1, 16));
  const int c3 = static_cast<int>(prng.NextInt(1, 16));
  const int hw = static_cast<int>(prng.NextInt(8, 16));

  Model m("fuzz_net", FmapShape{c0, hw, hw});
  int in_c = c0;
  for (const auto& [name, out_c] :
       {std::pair{"l0", c1}, std::pair{"l1", c2}, std::pair{"l2", c3}}) {
    ConvLayer l;
    l.name = name;
    l.in_channels = in_c;
    l.out_channels = out_c;
    l.relu = prng.NextInt(0, 1) != 0;
    m.Append(l);
    in_c = out_c;
  }

  std::vector<LayerMapping> mapping;
  for (int i = 0; i < 3; ++i) {
    mapping.push_back(LayerMapping{
        prng.NextInt(0, 1) ? ConvMode::kWinograd : ConvMode::kSpatial,
        prng.NextInt(0, 1) ? Dataflow::kWeightStationary
                           : Dataflow::kInputStationary});
  }
  const int pt = prng.NextInt(0, 1) ? 4 : 6;
  auto r = RunEndToEnd(m, TestConfig(pt), TestSpec(), mapping,
                       GetParam() * 271 + 9);
  EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
  EXPECT_EQ(r.sim_out, r.golden_out)
      << "seed=" << GetParam() << " pt=" << pt;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzNetworkTest,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace hdnn
