// Randomized end-to-end fuzzing of the compiler + simulator pipeline:
// deterministic pseudo-random layer geometries, modes, dataflows and buffer
// sizes, each run validated by the stream checker and compared bit-exactly
// against the golden reference. The strongest regression net in the repo —
// any slab-addressing, handshake or layout bug surfaces here.
#include <gtest/gtest.h>

#include <array>

#include "common/prng.h"
#include "compiler/stream_check.h"
#include "estimator/latency_model.h"
#include "nn/builders.h"
#include "testing_util.h"
#include "winograd/decompose.h"

namespace hdnn {
namespace {

using ::hdnn::testing::RunEndToEnd;
using ::hdnn::testing::TestConfig;
using ::hdnn::testing::TestSpec;

class FuzzPipelineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzPipelineTest, RandomLayersMatchGolden) {
  Prng prng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    // Random geometry within the supported envelope.
    const int kernel_pick = static_cast<int>(prng.NextInt(0, 3));
    const int kernel = std::array<int, 4>{1, 3, 5, 7}[static_cast<std::size_t>(
        kernel_pick)];
    const int c = static_cast<int>(prng.NextInt(1, 24));
    const int k = static_cast<int>(prng.NextInt(1, 24));
    const int h = static_cast<int>(prng.NextInt(kernel, 20));
    const int w = static_cast<int>(prng.NextInt(kernel, 20));
    const int pad = static_cast<int>(prng.NextInt(0, (kernel - 1) / 2 + 1));
    const bool relu = prng.NextInt(0, 1) != 0;
    int stride = static_cast<int>(prng.NextInt(1, 2));
    if ((h + 2 * pad - kernel) / stride < 0 ||
        (w + 2 * pad - kernel) / stride < 0) {
      stride = 1;
    }
    if (h + 2 * pad < kernel || w + 2 * pad < kernel) continue;

    const Model m =
        BuildSingleConv(c, k, h, w, kernel, stride, pad, relu);

    const ConvMode mode = (stride == 1 && prng.NextInt(0, 1))
                              ? ConvMode::kWinograd
                              : ConvMode::kSpatial;
    Dataflow flow = prng.NextInt(0, 1) ? Dataflow::kWeightStationary
                                       : Dataflow::kInputStationary;
    if (mode == ConvMode::kWinograd && NumKernelSlices(kernel, kernel) > 1) {
      flow = Dataflow::kInputStationary;
    }
    const int pt = prng.NextInt(0, 1) ? 4 : 6;
    AccelConfig cfg = TestConfig(pt);
    // Shrink buffers sometimes to exercise column tiling / K-grouping.
    if (prng.NextInt(0, 2) == 0) {
      cfg.input_buffer_vectors = 512;
      cfg.weight_buffer_vectors = 288;
      cfg.output_buffer_vectors = 1024;
    }

    SCOPED_TRACE(::testing::Message()
                 << "seed=" << GetParam() << " iter=" << iter << " c=" << c
                 << " k=" << k << " h=" << h << " w=" << w << " kern="
                 << kernel << " s=" << stride << " p=" << pad
                 << " mode=" << ToString(mode) << " flow=" << ToString(flow)
                 << " pt=" << pt);
    try {
      auto r = RunEndToEnd(m, cfg, TestSpec(),
                           {LayerMapping{mode, flow}},
                           /*seed=*/GetParam() * 977 + iter);
      EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
      EXPECT_EQ(r.sim_out, r.golden_out);
    } catch (const CapacityError&) {
      // geometry does not fit the shrunken buffers — acceptable outcome
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipelineTest,
                         ::testing::Range<std::uint64_t>(1, 19));

// Kernel-7 Winograd decomposition (Sec. 4.2.5): 3x3 slice grids of 3x3 = 9
// slices with per-slice offsets, partial-edge slices zero-padded — the
// deepest decomposition geometry the ISA's WINO_OFFSET field addresses.
class FuzzKernel7WinoTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzKernel7WinoTest, Kernel7DecompositionMatchesGolden) {
  Prng prng(GetParam() * 7919);
  for (int iter = 0; iter < 3; ++iter) {
    const int c = static_cast<int>(prng.NextInt(1, 10));
    const int k = static_cast<int>(prng.NextInt(1, 12));
    const int h = static_cast<int>(prng.NextInt(7, 16));
    const int w = static_cast<int>(prng.NextInt(7, 16));
    const int pad = static_cast<int>(prng.NextInt(0, 3));
    const bool relu = prng.NextInt(0, 1) != 0;

    const Model m = BuildSingleConv(c, k, h, w, /*kernel=*/7, /*stride=*/1,
                                    pad, relu);
    ASSERT_EQ(NumKernelSlices(7, 7), 9);
    const int pt = prng.NextInt(0, 1) ? 4 : 6;
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << GetParam() << " iter=" << iter << " c=" << c
                 << " k=" << k << " h=" << h << " w=" << w << " p=" << pad
                 << " pt=" << pt);
    // Decomposed kernels accumulate per group, so IS is the only legal flow.
    auto r = RunEndToEnd(
        m, TestConfig(pt), TestSpec(),
        {LayerMapping{ConvMode::kWinograd, Dataflow::kInputStationary}},
        /*seed=*/GetParam() * 131 + iter);
    EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
    EXPECT_EQ(r.sim_out, r.golden_out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzKernel7WinoTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// Stride-2 with padding at the geometry edges: every kernel size against
// pads from 0 to beyond "same", on fmap sizes where the last window only
// survives because of (or is clipped by) the padding ring. Spatial mode
// (stride-2 excludes Winograd), both dataflows.
TEST(FuzzStride2PadEdgeTest, EdgeGeometriesMatchGolden) {
  std::uint64_t seed = 1;
  for (const int kernel : {3, 5, 7}) {
    for (const int pad : {0, (kernel - 1) / 2, (kernel - 1) / 2 + 1}) {
      for (const int hw : {kernel, kernel + 1, 2 * kernel + 1, 12, 13}) {
        if (hw + 2 * pad < kernel) continue;
        const Model m = BuildSingleConv(3, 8, hw, hw, kernel, /*stride=*/2,
                                        pad, /*relu=*/true);
        for (const Dataflow flow :
             {Dataflow::kInputStationary, Dataflow::kWeightStationary}) {
          SCOPED_TRACE(::testing::Message()
                       << "kern=" << kernel << " pad=" << pad << " hw=" << hw
                       << " flow=" << ToString(flow));
          auto r = RunEndToEnd(m, TestConfig(4), TestSpec(),
                               {LayerMapping{ConvMode::kSpatial, flow}},
                               ++seed);
          EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
          EXPECT_EQ(r.sim_out, r.golden_out);
        }
      }
    }
  }
}

// Channel counts above one PI/PO block with shrunken buffers: forces
// multi-group weight schedules (GK > 1) and channel blocking (CB > 1), the
// partitioning paths a single-vector layer never reaches.
class FuzzWideChannelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzWideChannelTest, MultiBlockChannelsMatchGolden) {
  Prng prng(GetParam() * 60013);
  for (int iter = 0; iter < 3; ++iter) {
    const int kernel = prng.NextInt(0, 1) ? 1 : 3;
    // Well above one PI=PO=4 vector, odd counts included.
    const int c = static_cast<int>(prng.NextInt(17, 40));
    const int k = static_cast<int>(prng.NextInt(17, 40));
    const int h = static_cast<int>(prng.NextInt(6, 12));
    const int w = static_cast<int>(prng.NextInt(6, 12));
    const bool relu = prng.NextInt(0, 1) != 0;
    const Model m = BuildSingleConv(c, k, h, w, kernel, /*stride=*/1,
                                    /*pad=*/-1, relu);

    const ConvMode mode =
        prng.NextInt(0, 1) ? ConvMode::kWinograd : ConvMode::kSpatial;
    Dataflow flow = prng.NextInt(0, 1) ? Dataflow::kWeightStationary
                                       : Dataflow::kInputStationary;
    const int pt = prng.NextInt(0, 1) ? 4 : 6;
    AccelConfig cfg = TestConfig(pt);
    // A weight buffer this small cannot hold one K-row of c>16 channels:
    // the compiler must split into K-groups and C-blocks.
    cfg.input_buffer_vectors = 768;
    cfg.weight_buffer_vectors = 144;
    cfg.output_buffer_vectors = 512;

    // Steer the forced mapping to a legal flow the way the DSE does
    // (compiler rule: CB > 1 needs WS and one fmap group; slices need IS).
    GroupCounts g;
    try {
      g = ComputeGroups(m.layer(0), m.InputOf(0), mode, cfg);
    } catch (const CapacityError&) {
      continue;  // does not fit the shrunken buffers at all
    }
    if (g.cb > 1 && (g.fmap_groups() != 1 || g.slices > 1)) continue;
    if (g.cb > 1) flow = Dataflow::kWeightStationary;
    if (g.slices > 1) flow = Dataflow::kInputStationary;

    SCOPED_TRACE(::testing::Message()
                 << "seed=" << GetParam() << " iter=" << iter << " c=" << c
                 << " k=" << k << " h=" << h << " w=" << w
                 << " kern=" << kernel << " mode=" << ToString(mode)
                 << " flow=" << ToString(flow) << " pt=" << pt);
    try {
      auto r = RunEndToEnd(m, cfg, TestSpec(), {LayerMapping{mode, flow}},
                           /*seed=*/GetParam() * 523 + iter);
      EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
      EXPECT_EQ(r.sim_out, r.golden_out);
    } catch (const CapacityError&) {
      // geometry does not fit the shrunken buffers — acceptable outcome
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzWideChannelTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// Channel blocking proper (CB > 1): legal only for single-fmap-group
// layers (H = W = 1, the canonicalised FC shape) under WS, with weight
// buffers too small for one K-row of the full channel depth.
class FuzzChannelBlockingTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzChannelBlockingTest, BlockedFcLayersMatchGolden) {
  Prng prng(GetParam() * 104729);
  for (int iter = 0; iter < 2; ++iter) {
    const int c = static_cast<int>(prng.NextInt(200, 700));
    const int k = static_cast<int>(prng.NextInt(4, 32));
    const bool relu = prng.NextInt(0, 1) != 0;
    const Model m = BuildSingleConv(c, k, 1, 1, /*kernel=*/1, /*stride=*/1,
                                    /*pad=*/0, relu);
    const int pt = prng.NextInt(0, 1) ? 4 : 6;
    AccelConfig cfg = TestConfig(pt);
    cfg.weight_buffer_vectors = 32;  // one K-row of c>128 cannot fit

    const GroupCounts g = ComputeGroups(m.layer(0), m.InputOf(0),
                                        ConvMode::kSpatial, cfg);
    ASSERT_GT(g.cb, 1) << "c=" << c << ": geometry must exercise blocking";
    ASSERT_EQ(g.fmap_groups(), 1);

    SCOPED_TRACE(::testing::Message() << "seed=" << GetParam() << " iter="
                                      << iter << " c=" << c << " k=" << k
                                      << " pt=" << pt << " cb=" << g.cb);
    auto r = RunEndToEnd(
        m, cfg, TestSpec(),
        {LayerMapping{ConvMode::kSpatial, Dataflow::kWeightStationary}},
        /*seed=*/GetParam() * 811 + iter);
    EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
    EXPECT_EQ(r.sim_out, r.golden_out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzChannelBlockingTest,
                         ::testing::Range<std::uint64_t>(1, 7));

// Residual graphs: random basic blocks — identity skips and skips across a
// stride-2 projection — in random CONV modes, validated bit-exactly against
// the graph-aware golden (fused SAVE_RES add + deferred ReLU included).
class FuzzResidualGraphTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzResidualGraphTest, ResidualBlocksMatchGolden) {
  Prng prng(GetParam() * 48271);
  for (int iter = 0; iter < 3; ++iter) {
    const int c0 = static_cast<int>(prng.NextInt(2, 10));
    const int c1 = static_cast<int>(prng.NextInt(2, 12));
    const int hw = static_cast<int>(prng.NextInt(8, 15));
    const bool projection = prng.NextInt(0, 1) != 0;
    const int c2 = projection ? static_cast<int>(prng.NextInt(2, 12)) : c1;

    Model m("fuzz_residual", FmapShape{c0, hw, hw});
    ConvLayer stem;
    stem.name = "stem";
    stem.in_channels = c0;
    stem.out_channels = c1;
    stem.relu = prng.NextInt(0, 1) != 0;
    m.Append(stem);
    ConvLayer a;
    a.name = "a";
    a.in_channels = c1;
    a.out_channels = c2;
    a.stride = projection ? 2 : 1;
    a.relu = true;
    m.Append(a);
    std::string skip = "stem";
    if (projection) {
      ConvLayer p;
      p.name = "p";
      p.in_channels = c1;
      p.out_channels = c2;
      p.kernel_h = p.kernel_w = 1;
      p.stride = 2;
      p.pad = 0;
      p.from = "stem";
      m.Append(p);
      skip = "p";
    }
    ConvLayer b;
    b.name = "b";
    b.in_channels = c2;
    b.out_channels = c2;
    b.relu = prng.NextInt(0, 1) != 0;
    b.from = "a";
    b.add = skip;
    m.Append(b);

    std::vector<LayerMapping> mapping;
    for (int i = 0; i < m.num_layers(); ++i) {
      const bool wino_legal = m.layer(i).stride == 1;
      mapping.push_back(LayerMapping{
          (wino_legal && prng.NextInt(0, 1)) ? ConvMode::kWinograd
                                             : ConvMode::kSpatial,
          prng.NextInt(0, 1) ? Dataflow::kWeightStationary
                             : Dataflow::kInputStationary});
    }
    const int pt = prng.NextInt(0, 1) ? 4 : 6;
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << GetParam() << " iter=" << iter << " c0=" << c0
                 << " c1=" << c1 << " c2=" << c2 << " hw=" << hw
                 << " proj=" << projection << " pt=" << pt);
    auto r = RunEndToEnd(m, TestConfig(pt), TestSpec(), mapping,
                         GetParam() * 389 + iter);
    EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
    EXPECT_GE(r.compiled.fmap_slots, 3)
        << "a live skip tensor needs a third DRAM slot";
    EXPECT_EQ(r.sim_out, r.golden_out);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzResidualGraphTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// A down-scaled full residual network (ResNet-18's graph shape at 32x32):
// two stages x two basic blocks with identity + projection skips, a pooled
// stem and a final FC — every graph feature in one program, hybrid-mapped.
TEST(ResidualNetworkEndToEndTest, MiniResNetMatchesGolden) {
  Model m("mini_resnet", FmapShape{3, 32, 32});
  ConvLayer stem;
  stem.name = "stem";
  stem.in_channels = 3;
  stem.out_channels = 8;
  stem.relu = true;
  stem.pool = 2;  // -> 8 x 16 x 16
  m.Append(stem);
  auto block = [&m](const std::string& name, const std::string& in_name,
                    int in_c, int out_c, int stride) {
    ConvLayer a;
    a.name = name + "a";
    a.in_channels = in_c;
    a.out_channels = out_c;
    a.stride = stride;
    a.relu = true;
    a.from = in_name;
    m.Append(a);
    std::string skip = in_name;
    if (stride != 1 || in_c != out_c) {
      ConvLayer p;
      p.name = name + "p";
      p.in_channels = in_c;
      p.out_channels = out_c;
      p.kernel_h = p.kernel_w = 1;
      p.stride = stride;
      p.pad = 0;
      p.from = in_name;
      m.Append(p);
      skip = p.name;
    }
    ConvLayer b;
    b.name = name + "b";
    b.in_channels = out_c;
    b.out_channels = out_c;
    b.relu = true;
    b.from = name + "a";
    b.add = skip;
    m.Append(b);
    return name + "b";
  };
  std::string prev = block("s1b1", "stem", 8, 8, 1);     // identity skip
  prev = block("s1b2", prev, 8, 8, 1);                   // identity skip
  prev = block("s2b1", prev, 8, 16, 2);                  // projection skip
  prev = block("s2b2", prev, 16, 16, 1);                 // identity skip
  m.AppendFullyConnected("fc", 10, false);

  std::vector<LayerMapping> mapping;
  for (int i = 0; i < m.num_layers(); ++i) {
    const ConvLayer& l = m.layer(i);
    const bool wino = WinogradApplicable(l) && !l.is_fc && l.kernel_h == 3;
    mapping.push_back(LayerMapping{
        wino ? ConvMode::kWinograd : ConvMode::kSpatial,
        Dataflow::kInputStationary});
  }
  for (const int pt : {4, 6}) {
    auto r = RunEndToEnd(m, TestConfig(pt), TestSpec(), mapping, 1234);
    EXPECT_TRUE(CheckInstructionStream(r.compiled).ok()) << "pt=" << pt;
    EXPECT_EQ(r.sim_out, r.golden_out) << "pt=" << pt;
    EXPECT_EQ(r.compiled.fmap_slots, 3) << "pt=" << pt;
  }
}

class FuzzNetworkTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzNetworkTest, RandomThreeLayerNetsMatchGolden) {
  Prng prng(GetParam() * 31337);
  // Chain three random conv layers with compatible channels + random modes.
  const int c0 = static_cast<int>(prng.NextInt(1, 12));
  const int c1 = static_cast<int>(prng.NextInt(1, 16));
  const int c2 = static_cast<int>(prng.NextInt(1, 16));
  const int c3 = static_cast<int>(prng.NextInt(1, 16));
  const int hw = static_cast<int>(prng.NextInt(8, 16));

  Model m("fuzz_net", FmapShape{c0, hw, hw});
  int in_c = c0;
  for (const auto& [name, out_c] :
       {std::pair{"l0", c1}, std::pair{"l1", c2}, std::pair{"l2", c3}}) {
    ConvLayer l;
    l.name = name;
    l.in_channels = in_c;
    l.out_channels = out_c;
    l.relu = prng.NextInt(0, 1) != 0;
    m.Append(l);
    in_c = out_c;
  }

  std::vector<LayerMapping> mapping;
  for (int i = 0; i < 3; ++i) {
    mapping.push_back(LayerMapping{
        prng.NextInt(0, 1) ? ConvMode::kWinograd : ConvMode::kSpatial,
        prng.NextInt(0, 1) ? Dataflow::kWeightStationary
                           : Dataflow::kInputStationary});
  }
  const int pt = prng.NextInt(0, 1) ? 4 : 6;
  auto r = RunEndToEnd(m, TestConfig(pt), TestSpec(), mapping,
                       GetParam() * 271 + 9);
  EXPECT_TRUE(CheckInstructionStream(r.compiled).ok());
  EXPECT_EQ(r.sim_out, r.golden_out)
      << "seed=" << GetParam() << " pt=" << pt;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzNetworkTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace hdnn
