#include <gtest/gtest.h>

#include "common/prng.h"
#include "refconv/direct.h"
#include "refconv/im2col.h"
#include "refconv/pool.h"

namespace hdnn {
namespace {

Tensor<float> RandomF(const Shape& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Prng prng(seed);
  t.FillRandomReal(prng, -1.0, 1.0);
  return t;
}

TEST(DirectConvTest, IdentityKernelCopiesInput) {
  // 1x1 kernel with value 1 and C=K=1 must reproduce the input.
  Tensor<float> in = RandomF(Shape{1, 5, 5}, 1);
  Tensor<float> w(Shape{1, 1, 1, 1}, 1.0f);
  Tensor<float> bias;
  const auto out = Conv2dDirect(in, w, bias, 1, 0, false);
  EXPECT_EQ(out.shape(), in.shape());
  EXPECT_LT(MaxAbsDiff(out, in), 1e-6);
}

TEST(DirectConvTest, BiasIsAdded) {
  Tensor<float> in(Shape{1, 3, 3}, 0.0f);
  Tensor<float> w(Shape{2, 1, 1, 1}, 0.0f);
  Tensor<float> bias(Shape{2});
  bias.flat(0) = 1.5f;
  bias.flat(1) = -2.5f;
  const auto out = Conv2dDirect(in, w, bias, 1, 0, false);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 1.5f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 1), -2.5f);
}

TEST(DirectConvTest, ReluClampsNegatives) {
  Tensor<float> in(Shape{1, 2, 2}, 1.0f);
  Tensor<float> w(Shape{1, 1, 1, 1}, -1.0f);
  Tensor<float> bias;
  const auto out = Conv2dDirect(in, w, bias, 1, 0, true);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
}

TEST(ResidualAddTest, SaturatesAndRectifies) {
  Tensor<std::int16_t> a(Shape{1, 2, 2});
  Tensor<std::int16_t> b(Shape{1, 2, 2});
  // feature_bits = 12 -> range [-2048, 2047].
  a.flat(0) = 2000;  b.flat(0) = 100;    // saturates high
  a.flat(1) = -2000; b.flat(1) = -100;   // saturates low
  a.flat(2) = -5;    b.flat(2) = 3;      // negative sum
  a.flat(3) = 7;     b.flat(3) = 8;      // plain sum
  const auto plain = AddResidualQ(a, b, 12, /*relu=*/false);
  EXPECT_EQ(plain.flat(0), 2047);
  EXPECT_EQ(plain.flat(1), -2048);
  EXPECT_EQ(plain.flat(2), -2);
  EXPECT_EQ(plain.flat(3), 15);
  const auto rectified = AddResidualQ(a, b, 12, /*relu=*/true);
  EXPECT_EQ(rectified.flat(1), 0);
  EXPECT_EQ(rectified.flat(2), 0);
  EXPECT_EQ(rectified.flat(3), 15);
}

TEST(ResidualAddTest, ShapeMismatchThrows) {
  Tensor<std::int16_t> a(Shape{1, 2, 2});
  Tensor<std::int16_t> b(Shape{1, 2, 3});
  EXPECT_THROW(AddResidualQ(a, b, 12, false), InvalidArgument);
}

TEST(DirectConvTest, KernelLargerThanPaddedInputThrows) {
  // Regression: H=1, R=3, stride=3, pad=0 used to slip past the output-size
  // division as (1 + 0 - 3) / 3 + 1 == 1 (truncation toward zero) and then
  // read rows that do not exist. The geometry must be rejected up front.
  Tensor<float> in(Shape{1, 1, 8});
  Tensor<float> w(Shape{1, 1, 3, 3});
  Tensor<float> bias(Shape{1});
  EXPECT_THROW(Conv2dDirect(in, w, bias, /*stride=*/3, /*pad=*/0, false),
               InvalidArgument);

  Tensor<std::int16_t> qin(Shape{1, 1, 8});
  Tensor<std::int8_t> qw(Shape{1, 1, 3, 3});
  Tensor<std::int32_t> qb(Shape{1});
  EXPECT_THROW(
      Conv2dDirectQ(qin, qw, qb, /*stride=*/3, /*pad=*/0, 6, 12, false),
      InvalidArgument);
  // One row of padding makes the window fit again: 1 + 2 - 3 == 0 rows.
  EXPECT_NO_THROW(Conv2dDirect(in, w, bias, /*stride=*/3, /*pad=*/1, false));
}

TEST(DirectConvTest, ChannelMismatchThrows) {
  Tensor<float> in(Shape{2, 4, 4});
  Tensor<float> w(Shape{1, 3, 3, 3});
  Tensor<float> bias;
  EXPECT_THROW(Conv2dDirect(in, w, bias, 1, 1, false), InvalidArgument);
}

struct RefCase {
  int c, k, h, w, r, stride, pad;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const RefCase& rc) {
  return os << rc.label;
}

class DirectVsIm2ColTest : public ::testing::TestWithParam<RefCase> {};

TEST_P(DirectVsIm2ColTest, TwoReferencesAgree) {
  const RefCase& rc = GetParam();
  Tensor<float> in = RandomF(Shape{rc.c, rc.h, rc.w}, 10);
  Tensor<float> w = RandomF(Shape{rc.k, rc.c, rc.r, rc.r}, 11);
  Tensor<float> bias = RandomF(Shape{rc.k}, 12);
  const auto a = Conv2dDirect(in, w, bias, rc.stride, rc.pad, false);
  const auto b = Conv2dIm2Col(in, w, bias, rc.stride, rc.pad, false);
  EXPECT_EQ(a.shape(), b.shape());
  EXPECT_LT(MaxAbsDiff(a, b), 1e-4) << rc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DirectVsIm2ColTest,
    ::testing::Values(RefCase{1, 1, 4, 4, 3, 1, 1, "minimal"},
                      RefCase{3, 8, 8, 8, 3, 1, 1, "typical3x3"},
                      RefCase{4, 4, 9, 7, 3, 1, 0, "rect_nopad"},
                      RefCase{2, 6, 12, 12, 5, 1, 2, "k5"},
                      RefCase{2, 2, 11, 11, 3, 2, 1, "stride2"},
                      RefCase{8, 16, 6, 6, 1, 1, 0, "pointwise"},
                      RefCase{5, 7, 13, 9, 7, 2, 3, "k7s2"}),
    [](const auto& info) { return std::string(info.param.label); });

TEST(QuantConvTest, MatchesFloatWithinLsb) {
  // Integer conv on integer-valued float data must agree exactly before
  // requantisation; with shift 0 the comparison is exact.
  Prng prng(3);
  Tensor<std::int16_t> in(Shape{3, 6, 6});
  in.FillRandomInt(prng, -20, 20);
  Tensor<std::int8_t> w(Shape{4, 3, 3, 3});
  w.FillRandomInt(prng, -8, 8);
  Tensor<std::int32_t> bias(Shape{4});
  bias.FillRandomInt(prng, -100, 100);

  Tensor<float> inf(in.shape());
  for (std::int64_t i = 0; i < in.elements(); ++i) inf.flat(i) = in.flat(i);
  Tensor<float> wf(w.shape());
  for (std::int64_t i = 0; i < w.elements(); ++i) wf.flat(i) = w.flat(i);
  Tensor<float> bf(bias.shape());
  for (std::int64_t i = 0; i < bias.elements(); ++i) bf.flat(i) = bias.flat(i);

  const auto qout = Conv2dDirectQ(in, w, bias, 1, 1, 0, 16, false);
  const auto fout = Conv2dDirect(inf, wf, bf, 1, 1, false);
  for (std::int64_t i = 0; i < qout.elements(); ++i) {
    EXPECT_EQ(static_cast<float>(qout.flat(i)), fout.flat(i)) << i;
  }
}

TEST(QuantConvTest, RequantShiftHalves) {
  Tensor<std::int16_t> in(Shape{1, 1, 1}, 10);
  Tensor<std::int8_t> w(Shape{1, 1, 1, 1}, 2);
  Tensor<std::int32_t> bias;
  const auto out = Conv2dDirectQ(in, w, bias, 1, 0, 2, 12, false);
  EXPECT_EQ(out.at(0, 0, 0), 5);  // 20 >> 2 = 5
}

TEST(QuantConvTest, SaturatesToFeatureWidth) {
  Tensor<std::int16_t> in(Shape{1, 1, 1}, 2000);
  Tensor<std::int8_t> w(Shape{1, 1, 1, 1}, 100);
  Tensor<std::int32_t> bias;
  const auto out = Conv2dDirectQ(in, w, bias, 1, 0, 0, 12, false);
  EXPECT_EQ(out.at(0, 0, 0), 2047);
}

TEST(QuantConvTest, ReluAppliesAfterRequant) {
  Tensor<std::int16_t> in(Shape{1, 1, 1}, -10);
  Tensor<std::int8_t> w(Shape{1, 1, 1, 1}, 5);
  Tensor<std::int32_t> bias;
  const auto out = Conv2dDirectQ(in, w, bias, 1, 0, 0, 12, true);
  EXPECT_EQ(out.at(0, 0, 0), 0);
}

TEST(PoolTest, MaxPoolPicksMaximum) {
  Tensor<float> in(Shape{1, 2, 2});
  in.flat(0) = 1;
  in.flat(1) = 4;
  in.flat(2) = -2;
  in.flat(3) = 3;
  const auto out = MaxPool2d(in, 2);
  EXPECT_EQ(out.shape(), Shape({1, 1, 1}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);
}

TEST(PoolTest, MaxPoolQNegativeValues) {
  Tensor<std::int16_t> in(Shape{1, 2, 2}, -5);
  in.at(0, 1, 1) = -1;
  const auto out = MaxPool2dQ(in, 2);
  EXPECT_EQ(out.at(0, 0, 0), -1);
}

TEST(PoolTest, AvgPoolAverages) {
  Tensor<float> in(Shape{1, 2, 2});
  in.flat(0) = 1;
  in.flat(1) = 2;
  in.flat(2) = 3;
  in.flat(3) = 4;
  const auto out = AvgPool2d(in, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.5f);
}

TEST(PoolTest, NonTilingWindowThrows) {
  Tensor<float> in(Shape{1, 3, 3});
  EXPECT_THROW(MaxPool2d(in, 2), InvalidArgument);
}

TEST(RunLayerQTest, ConvReluPoolPipeline) {
  Prng prng(4);
  ConvLayer layer;
  layer.name = "l";
  layer.in_channels = 2;
  layer.out_channels = 2;
  layer.relu = true;
  layer.pool = 2;
  Tensor<std::int16_t> in(Shape{2, 8, 8});
  in.FillRandomInt(prng, -64, 64);
  Tensor<std::int8_t> w(Shape{2, 2, 3, 3});
  w.FillRandomInt(prng, -8, 8);
  Tensor<std::int32_t> bias(Shape{2});
  bias.FillRandomInt(prng, -16, 16);
  const auto out = RunLayerQ(layer, in, w, bias, 6, 12);
  EXPECT_EQ(out.shape(), Shape({2, 4, 4}));
  for (std::int64_t i = 0; i < out.elements(); ++i) {
    EXPECT_GE(out.flat(i), 0);  // ReLU before pool
  }
}

}  // namespace
}  // namespace hdnn
