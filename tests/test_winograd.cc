#include <gtest/gtest.h>

#include "common/prng.h"
#include "refconv/direct.h"
#include "winograd/decompose.h"
#include "winograd/matrices.h"
#include "winograd/transform.h"
#include "winograd/wino_conv.h"

namespace hdnn {
namespace {

Tensor<float> RandomF(const Shape& shape, std::uint64_t seed) {
  Tensor<float> t(shape);
  Prng prng(seed);
  t.FillRandomReal(prng, -1.0, 1.0);
  return t;
}

// --- matrices ---

TEST(MatricesTest, ParamsForPt) {
  EXPECT_EQ(WinoParamForPt(4).m, 2);
  EXPECT_EQ(WinoParamForPt(6).m, 4);
  EXPECT_THROW(WinoParamForPt(5), InvalidArgument);
}

TEST(MatricesTest, MultCountsMatchPaperClaim) {
  // Paper Sec. 4.2.1: F(4x4,3x3) needs 36 multiplications per tile vs 144
  // for Spatial — a 4x reduction. F(2x2,3x3): 16 vs 36 = 2.25x.
  const WinoParam f4 = WinoParamForPt(6);
  EXPECT_EQ(f4.wino_mults_per_tile(), 36);
  EXPECT_EQ(f4.spatial_mults_per_tile(), 144);
  const WinoParam f2 = WinoParamForPt(4);
  EXPECT_EQ(f2.wino_mults_per_tile(), 16);
  EXPECT_EQ(f2.spatial_mults_per_tile(), 36);
}

class WinoCorrectnessTest : public ::testing::TestWithParam<int> {};

// The fundamental Winograd identity on a single tile:
// AT [ (G g GT) (.) (BT d B) ] A == conv(d, g) valid region.
TEST_P(WinoCorrectnessTest, SingleTileIdentity) {
  const int pt = GetParam();
  const int m = WinoParamForPt(pt).m;
  Prng prng(42);
  std::vector<double> d(static_cast<std::size_t>(pt * pt));
  std::vector<double> g(9);
  for (auto& v : d) v = prng.NextDouble(-1, 1);
  for (auto& v : g) v = prng.NextDouble(-1, 1);

  const auto v = TransformInputTileF(d, pt);
  const auto u = TransformKernelF(g, pt);
  std::vector<double> mm(static_cast<std::size_t>(pt * pt));
  for (int i = 0; i < pt * pt; ++i) {
    mm[static_cast<std::size_t>(i)] =
        u[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
  }
  const auto y = TransformOutputTileF(mm, pt);

  // Direct valid convolution of the tile.
  for (int oy = 0; oy < m; ++oy) {
    for (int ox = 0; ox < m; ++ox) {
      double ref = 0;
      for (int r = 0; r < 3; ++r) {
        for (int s = 0; s < 3; ++s) {
          ref += d[static_cast<std::size_t>((oy + r) * pt + ox + s)] *
                 g[static_cast<std::size_t>(r * 3 + s)];
        }
      }
      EXPECT_NEAR(y[static_cast<std::size_t>(oy * m + ox)], ref, 1e-9)
          << "tile output (" << oy << "," << ox << ") pt=" << pt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothTileSizes, WinoCorrectnessTest,
                         ::testing::Values(4, 6));

TEST(TransformTest, IntegerInputTransformMatchesFloat) {
  for (int pt : {4, 6}) {
    Prng prng(7);
    std::vector<std::int32_t> d(static_cast<std::size_t>(pt * pt));
    std::vector<double> df(static_cast<std::size_t>(pt * pt));
    for (std::size_t i = 0; i < d.size(); ++i) {
      d[i] = static_cast<std::int32_t>(prng.NextInt(-2048, 2047));
      df[i] = d[i];
    }
    const auto vi = TransformInputTile(d, pt);
    const auto vf = TransformInputTileF(df, pt);
    for (std::size_t i = 0; i < vi.size(); ++i) {
      EXPECT_EQ(static_cast<double>(vi[i]), vf[i]) << "pt=" << pt;
    }
  }
}

TEST(TransformTest, KernelTransformExactForPt4) {
  // G entries for F(2x2,3x3) are multiples of 1/2, so U * 4 is integral:
  // quantisation with u_shift = 2 is exact.
  Prng prng(9);
  std::vector<std::int8_t> g(9);
  for (auto& v : g) v = static_cast<std::int8_t>(prng.NextInt(-127, 127));
  std::vector<double> gf(9);
  for (int i = 0; i < 9; ++i) gf[static_cast<std::size_t>(i)] = g[static_cast<std::size_t>(i)];
  const auto uq = TransformKernelQ(g, 4, 2);
  const auto uf = TransformKernelF(gf, 4);
  for (std::size_t i = 0; i < uq.size(); ++i) {
    EXPECT_EQ(static_cast<double>(uq[i]), uf[i] * 4.0);
  }
}

TEST(TransformTest, KernelTransformBoundedForPt6) {
  // |U| <= max|g| for F(4x4,3x3) (G row abs-sums <= 1), so int16 with
  // u_shift 7 never saturates for int8 kernels.
  Prng prng(13);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::int8_t> g(9);
    for (auto& v : g) v = static_cast<std::int8_t>(prng.NextInt(-127, 127));
    const auto uq = TransformKernelQ(g, 6, 7);
    for (const auto v : uq) {
      EXPECT_LE(std::abs(static_cast<int>(v)), 127 * 128);
    }
  }
}

TEST(TransformTest, InputGrowthBound) {
  EXPECT_EQ(InputTransformGrowth(4), 4);    // rows sum <= 2
  EXPECT_EQ(InputTransformGrowth(6), 100);  // rows sum <= 10
}

// --- decomposition ---

TEST(DecomposeTest, SliceCounts) {
  EXPECT_EQ(NumKernelSlices(3, 3), 1);
  EXPECT_EQ(NumKernelSlices(5, 5), 4);
  EXPECT_EQ(NumKernelSlices(7, 7), 9);
  EXPECT_EQ(NumKernelSlices(1, 1), 1);
  EXPECT_EQ(NumKernelSlices(11, 11), 16);
  EXPECT_EQ(NumKernelSlices(3, 7), 3);
}

TEST(DecomposeTest, SlicesPartitionTheKernel) {
  Prng prng(5);
  Tensor<float> w(Shape{2, 3, 5, 5});
  w.FillRandomReal(prng, -1, 1);
  const auto slices = DecomposeKernel(w);
  ASSERT_EQ(slices.size(), 4u);
  // Every original tap appears in exactly one slice at the right offset.
  Tensor<float> reassembled(Shape{2, 3, 5, 5});
  for (const auto& slice : slices) {
    for (int k = 0; k < 2; ++k) {
      for (int c = 0; c < 3; ++c) {
        for (int r = 0; r < 3; ++r) {
          for (int s = 0; s < 3; ++s) {
            const int rr = slice.row_offset + r;
            const int ss = slice.col_offset + s;
            if (rr < 5 && ss < 5) {
              reassembled.at(k, c, rr, ss) = slice.kernel.at(k, c, r, s);
            } else {
              EXPECT_EQ(slice.kernel.at(k, c, r, s), 0.0f)
                  << "zero padding expected beyond kernel";
            }
          }
        }
      }
    }
  }
  EXPECT_LT(MaxAbsDiff(reassembled, w), 1e-7);
}

// --- full convolutions ---

struct WinoCase {
  int c, k, h, w, kernel, pad;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const WinoCase& wc) {
  return os << wc.label;
}

class WinoConvTest : public ::testing::TestWithParam<std::tuple<WinoCase, int>> {};

TEST_P(WinoConvTest, FloatWinogradMatchesDirect) {
  const auto& [wc, pt] = GetParam();
  Tensor<float> in = RandomF(Shape{wc.c, wc.h, wc.w}, 21);
  Tensor<float> w = RandomF(Shape{wc.k, wc.c, wc.kernel, wc.kernel}, 22);
  Tensor<float> bias = RandomF(Shape{wc.k}, 23);
  const auto wino = Conv2dWinogradF(in, w, bias, wc.pad, false, pt);
  const auto ref = Conv2dDirect(in, w, bias, 1, wc.pad, false);
  EXPECT_EQ(wino.shape(), ref.shape());
  EXPECT_LT(MaxAbsDiff(wino, ref), 1e-3) << wc.label;
}

TEST_P(WinoConvTest, GemmFormulationMatchesTileFormulation) {
  // Paper Eq. 2: the EWMM splits into PT^2 independent GEMMs. Both
  // evaluation orders must agree.
  const auto& [wc, pt] = GetParam();
  Tensor<float> in = RandomF(Shape{wc.c, wc.h, wc.w}, 31);
  Tensor<float> w = RandomF(Shape{wc.k, wc.c, wc.kernel, wc.kernel}, 32);
  Tensor<float> bias;
  const auto a = Conv2dWinogradF(in, w, bias, wc.pad, false, pt);
  const auto b = Conv2dWinogradGemmF(in, w, bias, wc.pad, false, pt);
  EXPECT_LT(MaxAbsDiff(a, b), 1e-4) << wc.label;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WinoConvTest,
    ::testing::Combine(
        ::testing::Values(WinoCase{1, 1, 6, 6, 3, 1, "minimal"},
                          WinoCase{3, 4, 8, 8, 3, 1, "typical"},
                          WinoCase{2, 2, 9, 7, 3, 0, "rect_nopad"},
                          WinoCase{2, 3, 10, 10, 5, 2, "k5_decomposed"},
                          WinoCase{1, 2, 14, 14, 7, 3, "k7_decomposed"},
                          WinoCase{4, 4, 5, 5, 1, 0, "k1_padded_up"}),
        ::testing::Values(4, 6)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).label) + "_pt" +
             std::to_string(std::get<1>(info.param));
    });

TEST(WinoQuantTest, Pt4IsBitExactAgainstSpatial) {
  // F(2x2,3x3) integer Winograd with u_shift=2 is *exactly* equal to the
  // direct integer convolution — the strongest equivalence property the
  // hybrid PE relies on.
  Prng prng(17);
  Tensor<std::int16_t> in(Shape{3, 10, 10});
  in.FillRandomInt(prng, -512, 511);
  Tensor<std::int8_t> w(Shape{4, 3, 3, 3});
  w.FillRandomInt(prng, -64, 64);
  Tensor<std::int32_t> bias(Shape{4});
  bias.FillRandomInt(prng, -1000, 1000);
  for (int shift : {0, 4, 6}) {
    const auto wino =
        Conv2dWinogradQ(in, w, bias, 1, shift, 12, false, 4, 2);
    const auto ref = Conv2dDirectQ(in, w, bias, 1, 1, shift, 12, false);
    EXPECT_EQ(wino, ref) << "shift=" << shift;
  }
}

TEST(WinoQuantTest, Pt6CloseToSpatialWithinQuantError) {
  // F(4x4,3x3) has fractional G coefficients, so the offline U quantisation
  // (u_shift = 7) introduces bounded error. The input transform grows values
  // by up to 100x (InputTransformGrowth(6)), so the absolute error scales
  // with |input|: err(Y) <~ |d|max * 100 * 2^-8 * C * A-amplification /
  // 2^(shift + u_shift). For the ranges below that bound is ~10 LSB — this
  // is the numeric cost the paper absorbs by widening PE features to 12 bit.
  Prng prng(19);
  Tensor<std::int16_t> in(Shape{4, 12, 12});
  in.FillRandomInt(prng, -64, 63);
  Tensor<std::int8_t> w(Shape{4, 4, 3, 3});
  w.FillRandomInt(prng, -16, 16);
  Tensor<std::int32_t> bias(Shape{4});
  bias.FillRandomInt(prng, -100, 100);
  const auto wino = Conv2dWinogradQ(in, w, bias, 1, 6, 12, false, 6, 7);
  const auto ref = Conv2dDirectQ(in, w, bias, 1, 1, 6, 12, false);
  double max_diff = 0;
  for (std::int64_t i = 0; i < wino.elements(); ++i) {
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(wino.flat(i)) - ref.flat(i)));
  }
  EXPECT_LT(max_diff, 10) << "F(4x4) quantisation error out of expected range";
}

TEST(WinoQuantTest, ReluAndBiasHandling) {
  Prng prng(23);
  Tensor<std::int16_t> in(Shape{2, 6, 6});
  in.FillRandomInt(prng, -128, 127);
  Tensor<std::int8_t> w(Shape{2, 2, 3, 3});
  w.FillRandomInt(prng, -16, 16);
  Tensor<std::int32_t> bias(Shape{2});
  bias.flat(0) = 500;
  bias.flat(1) = -500;
  const auto wino = Conv2dWinogradQ(in, w, bias, 1, 2, 12, true, 4, 2);
  const auto ref = Conv2dDirectQ(in, w, bias, 1, 1, 2, 12, true);
  EXPECT_EQ(wino, ref);
}

// --- multiplication accounting ---

TEST(MultCountTest, ReductionFactorsMatchPaper) {
  // 3x3 stride-1 same-pad layer: F(4x4) reduction ~4x, F(2x2) ~2.25x
  // (modulo edge-tile rounding).
  const auto f4 = CountConvMults(64, 64, 32, 32, 3, 3, 1, 6);
  EXPECT_NEAR(f4.reduction(), 4.0, 0.15);
  const auto f2 = CountConvMults(64, 64, 32, 32, 3, 3, 1, 4);
  EXPECT_NEAR(f2.reduction(), 2.25, 0.1);
}

TEST(MultCountTest, DecompositionOverheadFor5x5) {
  // Paper Sec. 5.2: a 5x5 kernel via F(4x4,3x3) loads
  // 4 * 36 / 25 = 5.76x more weight data; compute reduction becomes
  // 25 * 16 / (4 * 36) = 2.78x.
  const auto f4 = CountConvMults(16, 16, 32, 32, 5, 5, 2, 6);
  EXPECT_NEAR(f4.reduction(), 25.0 * 16 / (4 * 36), 0.2);
}

TEST(MultCountTest, PointwiseConvIsBetterSpatial) {
  // 1x1 kernels padded to 3x3 waste Winograd multiplications.
  const auto f = CountConvMults(32, 32, 16, 16, 1, 1, 0, 6);
  EXPECT_LT(f.reduction(), 1.0);
}

}  // namespace
}  // namespace hdnn
