// Tests for the post-training quantization flow: calibration statistics,
// scale selection, QuantConfig validation, compiler QUAN_PARAM wiring
// (per-layer and per-channel), parameter quantization, and bit-identity of
// the simulator against the quantized golden reference at calibrated
// precision points.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "nn/builders.h"
#include "quant/calibration.h"
#include "quant/golden.h"
#include "quant/quant_config.h"
#include "quant/scale_select.h"
#include "runtime/engine.h"
#include "runtime/runtime.h"
#include "testing_util.h"

namespace hdnn {
namespace {

using testing::TestConfig;
using testing::TestSpec;

std::vector<LayerMapping> SpatialMapping(const Model& model) {
  return std::vector<LayerMapping>(
      static_cast<std::size_t>(model.num_layers()),
      LayerMapping{ConvMode::kSpatial, Dataflow::kInputStationary});
}

/// Calibrate + select scales + compile + quantize + run sim and quantized
/// golden; returns true when the sim output is bit-identical to the golden.
struct FlowResult {
  CompiledModel cm;
  QuantConfig qc;
  bool bit_identical = false;
};

FlowResult RunQuantFlow(const Model& model,
                        const std::vector<LayerMapping>& mapping,
                        const AccelConfig& cfg, const ScaleOptions& options,
                        const ModelWeightsF* weights = nullptr) {
  const ModelWeightsF weightsF =
      weights != nullptr ? *weights : SyntheticWeightsF(model, 11);
  std::vector<Tensor<float>> batches;
  for (int i = 0; i < 3; ++i) {
    batches.push_back(MakeCalibrationInput(model.input(), 40 + i));
  }
  const CalibrationResult calib = Calibrate(model, weightsF, batches);

  FlowResult r;
  r.qc = SelectScales(model, cfg, calib, weightsF, options);
  const Compiler compiler(cfg, TestSpec());
  r.cm = compiler.Compile(model, mapping, &r.qc);
  const ModelWeightsQ wq = QuantizeParams(model, weightsF, r.cm);

  const Tensor<float> input = MakeCalibrationInput(model.input(), 99);
  const Tensor<std::int16_t> qin = QuantizeInputFmap(input, r.cm);
  const std::vector<Tensor<std::int16_t>> golden =
      QuantGoldenForward(model, r.cm, wq, qin);

  Runtime runtime(cfg, TestSpec());
  const RunReport report = runtime.Execute(model, r.cm, wq, qin);
  r.bit_identical = report.output.shape() == golden.back().shape() &&
                    report.output.storage() == golden.back().storage();
  return r;
}

// ---------------------------------------------------------------- RangeStats

TEST(RangeStatsTest, TracksMinMaxAndCount) {
  Tensor<float> t(Shape{4});
  t.flat(0) = -2.0f;
  t.flat(1) = 0.5f;
  t.flat(2) = 3.0f;
  t.flat(3) = 0.0f;
  RangeStats s;
  s.Observe(t);
  EXPECT_EQ(s.count(), 4);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.max_abs(), 3.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 3.0);
}

TEST(RangeStatsTest, PercentileShedsOutliers) {
  // 999 values at ~1.0 and a single 100.0 outlier: the 99% bound must stay
  // near 1, the 100% bound must be the outlier.
  Tensor<float> t(Shape{1000});
  for (std::int64_t i = 0; i < 999; ++i) t.flat(i) = 1.0f;
  t.flat(999) = 100.0f;
  RangeStats s;
  s.Observe(t);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_LT(s.Percentile(0.99), 2.0);
  EXPECT_GE(s.Percentile(0.99), 1.0);
}

TEST(RangeStatsTest, ObservationOrderDoesNotChangePercentiles) {
  // The histogram grows by doubling with exact 2:1 merges, so seeing the
  // large value first or last must give the same bins.
  Tensor<float> small(Shape{100});
  for (std::int64_t i = 0; i < 100; ++i) {
    small.flat(i) = 0.01f * static_cast<float>(i + 1);
  }
  Tensor<float> big(Shape{1});
  big.flat(0) = 57.0f;
  RangeStats ab;
  ab.Observe(small);
  ab.Observe(big);
  RangeStats ba;
  ba.Observe(big);
  ba.Observe(small);
  for (double p : {0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(ab.Percentile(p), ba.Percentile(p)) << "p=" << p;
  }
}

TEST(RangeStatsTest, RejectsNonFiniteActivations) {
  Tensor<float> t(Shape{1});
  t.flat(0) = std::numeric_limits<float>::infinity();
  RangeStats s;
  EXPECT_THROW(s.Observe(t), InvalidArgument);
}

// ----------------------------------------------------------- Fp32 reference

TEST(CalibrationTest, Fp32ForwardMatchesGraphSemantics) {
  // On the residual model the FP32 path must branch/add exactly like the
  // integer golden: same shapes, ReLU after the add (non-negative output).
  const Model model = BuildTinyResidualBlock();
  const ModelWeightsF weightsF = SyntheticWeightsF(model, 3);
  const Tensor<float> input = MakeCalibrationInput(model.input(), 5);
  const std::vector<Tensor<float>> acts = Fp32Forward(model, weightsF, input);
  ASSERT_EQ(static_cast<int>(acts.size()), model.num_layers());
  for (int i = 0; i < model.num_layers(); ++i) {
    const FmapShape want = model.OutputOf(i);
    EXPECT_EQ(acts[static_cast<std::size_t>(i)].shape(),
              Shape({want.channels, want.height, want.width}));
  }
  for (std::int64_t e = 0; e < acts.back().elements(); ++e) {
    EXPECT_GE(acts.back().flat(e), 0.0f);  // final layer ReLUs after add
  }
}

TEST(CalibrationTest, CoversEveryTensor) {
  const Model model = BuildTinyCnn();
  const ModelWeightsF weightsF = SyntheticWeightsF(model, 3);
  std::vector<Tensor<float>> batches;
  batches.push_back(MakeCalibrationInput(model.input(), 1));
  batches.push_back(MakeCalibrationInput(model.input(), 2));
  const CalibrationResult calib = Calibrate(model, weightsF, batches);
  ASSERT_EQ(static_cast<int>(calib.tensors.size()), model.num_layers() + 1);
  EXPECT_EQ(calib.batches, 2);
  for (const RangeStats& s : calib.tensors) {
    EXPECT_GT(s.count(), 0);
    EXPECT_GT(s.max_abs(), 0.0);
  }
}

// ------------------------------------------------------------- QuantConfig

TEST(QuantConfigTest, UniformValidatesAndFingerprintsStably) {
  const Model model = BuildTinyCnn();
  const QuantConfig a = QuantConfig::Uniform(model);
  const QuantConfig b = QuantConfig::Uniform(model);
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  QuantConfig c = QuantConfig::Uniform(model);
  c.act_frac[1] = 5;
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(QuantConfigTest, ValidateRejectsNegativeShift) {
  const Model model = BuildTinyCnn();
  QuantConfig qc = QuantConfig::Uniform(model);
  // out_frac finer than in_frac + wgt_frac would need a LEFT shift.
  qc.act_frac[1] = qc.act_frac[0] + qc.wgt_frac[0] + 1;
  EXPECT_THROW(qc.Validate(model), InvalidArgument);
}

TEST(QuantConfigTest, ValidateRejectsMismatchedResidualGrids) {
  const Model model = BuildTinyResidualBlock();
  QuantConfig qc = QuantConfig::Uniform(model);
  // Last layer adds the projection (layer 2): force differing grids.
  qc.act_frac[static_cast<std::size_t>(model.num_layers())] = 5;
  EXPECT_THROW(qc.Validate(model), InvalidArgument);
}

// ------------------------------------------------------------ SelectScales

TEST(SelectScalesTest, RespectsDatapathConstraints) {
  const Model model = BuildTinyResidualBlock();
  const AccelConfig cfg = TestConfig();
  const ModelWeightsF weightsF = SyntheticWeightsF(model, 11);
  std::vector<Tensor<float>> batches;
  batches.push_back(MakeCalibrationInput(model.input(), 1));
  const CalibrationResult calib = Calibrate(model, weightsF, batches);
  const QuantConfig qc = SelectScales(model, cfg, calib, weightsF);
  // Validate() enforces shift >= 0 and residual-grid equality; re-check the
  // residual rule explicitly for the skip edge of the last layer.
  const int last = model.num_layers() - 1;
  const int res = model.residual_index(last);
  ASSERT_GE(res, 0);
  EXPECT_EQ(qc.out_frac(last), qc.out_frac(res));
  for (int t = 0; t <= model.num_layers(); ++t) {
    EXPECT_GT(qc.act_frac[static_cast<std::size_t>(t)], 0);
    EXPECT_LT(qc.act_frac[static_cast<std::size_t>(t)], cfg.data_width);
  }
}

// -------------------------------------------------------- Compiler wiring

TEST(QuantCompileTest, UniformConfigIsBitIdenticalToLegacyCompile) {
  const Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  const Compiler compiler(cfg, TestSpec());
  const std::vector<LayerMapping> mapping = SpatialMapping(model);
  const CompiledModel legacy = compiler.Compile(model, mapping);
  const QuantConfig uniform = QuantConfig::Uniform(model);
  const CompiledModel quant = compiler.Compile(model, mapping, &uniform);
  ASSERT_EQ(legacy.program.size(), quant.program.size());
  for (std::size_t i = 0; i < legacy.program.size(); ++i) {
    EXPECT_EQ(legacy.program[i].lo, quant.program[i].lo) << "instr " << i;
    EXPECT_EQ(legacy.program[i].hi, quant.program[i].hi) << "instr " << i;
  }
}

/// K=512 with C=16 exceeds the test weight buffer, so the compiler splits
/// the layer into two 256-channel weight blocks — the smallest geometry
/// where per-block shifts can actually differ.
Model TwoBlockConv() { return BuildSingleConv(16, 512, 8, 8, 3, 1, 1, true); }

/// Scales channels [256, 512) down so the second weight block wants a
/// finer grid than the first.
void ShrinkSecondBlock(ModelWeightsF& weightsF) {
  Tensor<float>& w = weightsF[0].weights;
  const std::int64_t per_k = w.elements() / w.shape().dim(0);
  for (int k = 256; k < 512; ++k) {
    for (std::int64_t e = 0; e < per_k; ++e) {
      w.flat(k * per_k + e) *= 0.05f;
    }
  }
}

TEST(QuantCompileTest, PerChannelShiftsAreConstantWithinWeightBlocks) {
  const Model model = TwoBlockConv();
  const AccelConfig cfg = TestConfig();
  ModelWeightsF weightsF = SyntheticWeightsF(model, 11);
  ShrinkSecondBlock(weightsF);
  std::vector<Tensor<float>> batches;
  batches.push_back(MakeCalibrationInput(model.input(), 1));
  const CalibrationResult calib = Calibrate(model, weightsF, batches);
  const QuantConfig qc = SelectScales(model, cfg, calib, weightsF);
  ASSERT_FALSE(qc.wgt_frac_ch[0].empty());

  const Compiler compiler(cfg, TestSpec());
  const CompiledModel cm = compiler.Compile(model, SpatialMapping(model), &qc);
  const LayerPlan& plan = cm.plans[0];
  ASSERT_EQ(static_cast<int>(plan.quan_shift_ch.size()), 512);
  // Block-constant: channels 0-255 share one shift, 256-511 another, and
  // the small-magnitude block gets the larger shift (finer weight grid).
  for (int k = 1; k < 256; ++k) {
    EXPECT_EQ(plan.quan_shift_ch[static_cast<std::size_t>(k)],
              plan.quan_shift_ch[0]);
    EXPECT_EQ(plan.quan_shift_ch[static_cast<std::size_t>(256 + k)],
              plan.quan_shift_ch[256]);
  }
  EXPECT_GT(plan.quan_shift_ch[256], plan.quan_shift_ch[0]);
}

TEST(QuantCompileTest, WinogradLayersStayUniform) {
  const Model model = BuildSingleConv(4, 8, 8, 8, 3, 1, 1, true);
  const AccelConfig cfg = TestConfig();
  const ModelWeightsF weightsF = SyntheticWeightsF(model, 11);
  std::vector<Tensor<float>> batches;
  batches.push_back(MakeCalibrationInput(model.input(), 1));
  const CalibrationResult calib = Calibrate(model, weightsF, batches);
  QuantConfig qc = SelectScales(model, cfg, calib, weightsF);
  qc.wgt_frac_ch[0].assign(8, qc.wgt_frac[0]);
  qc.wgt_frac_ch[0][0] += 2;  // per-channel request the mode cannot honour
  const Compiler compiler(cfg, TestSpec());
  const std::vector<LayerMapping> wino(
      1, LayerMapping{ConvMode::kWinograd, Dataflow::kInputStationary});
  const CompiledModel cm = compiler.Compile(model, wino, &qc);
  EXPECT_TRUE(cm.plans[0].quan_shift_ch.empty());
  EXPECT_EQ(cm.plans[0].quan_shift,
            cm.plans[0].in_frac + cm.plans[0].wgt_frac +
                cm.plans[0].u_shift - cm.plans[0].out_frac);
}

// --------------------------------------------- end-to-end bit-identity

TEST(QuantEndToEndTest, TinyCnnSimMatchesQuantGolden) {
  const Model model = BuildTinyCnn();
  const FlowResult r =
      RunQuantFlow(model, SpatialMapping(model), TestConfig(), ScaleOptions{});
  EXPECT_TRUE(r.bit_identical);
}

TEST(QuantEndToEndTest, ResidualModelSimMatchesQuantGolden) {
  const Model model = BuildTinyResidualBlock();
  const FlowResult r =
      RunQuantFlow(model, SpatialMapping(model), TestConfig(), ScaleOptions{});
  EXPECT_TRUE(r.bit_identical);
}

TEST(QuantEndToEndTest, PerChannelPathSimMatchesQuantGolden) {
  const Model model = TwoBlockConv();
  ModelWeightsF weightsF = SyntheticWeightsF(model, 11);
  ShrinkSecondBlock(weightsF);
  ScaleOptions options;
  options.per_channel = true;
  const FlowResult r = RunQuantFlow(model, SpatialMapping(model), TestConfig(),
                                    options, &weightsF);
  // The point of this test is the per-channel COMP path: the plan must
  // actually carry per-block shifts, and the sim must still match exactly.
  EXPECT_FALSE(r.cm.plans[0].quan_shift_ch.empty());
  EXPECT_TRUE(r.bit_identical);
}

TEST(QuantEndToEndTest, WinogradModeSimMatchesQuantGolden) {
  const Model model = BuildSingleConv(4, 8, 8, 8, 3, 1, 1, true);
  const std::vector<LayerMapping> wino(
      1, LayerMapping{ConvMode::kWinograd, Dataflow::kInputStationary});
  const FlowResult r = RunQuantFlow(model, wino, TestConfig(), ScaleOptions{});
  EXPECT_TRUE(r.bit_identical);
}

TEST(QuantEndToEndTest, CalibratedShiftsDifferFromHandAssigned) {
  // The whole point of calibration: with He-scaled float weights the
  // adopted shifts must NOT be the hand-assigned base_shift everywhere.
  const Model model = BuildTinyCnn();
  const FlowResult r =
      RunQuantFlow(model, SpatialMapping(model), TestConfig(), ScaleOptions{});
  bool any_differs = false;
  for (const LayerPlan& plan : r.cm.plans) {
    any_differs |= plan.quan_shift != r.cm.base_shift + plan.u_shift;
  }
  EXPECT_TRUE(any_differs);
}

// ------------------------------------------------------------- engine cache

TEST(QuantEngineTest, CacheKeyDistinguishesQuantConfigs) {
  const Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  const std::vector<LayerMapping> mapping = SpatialMapping(model);
  InferenceEngine engine(TestSpec(), 1);

  bool hit = false;
  engine.GetOrCompile(model, cfg, mapping, &hit);
  EXPECT_FALSE(hit);
  QuantConfig qc = QuantConfig::Uniform(model);
  qc.act_frac[1] = 5;
  engine.GetOrCompile(model, cfg, mapping, &hit, &qc);
  EXPECT_FALSE(hit) << "a quantised deployment must not reuse the legacy "
                       "program";
  engine.GetOrCompile(model, cfg, mapping, &hit, &qc);
  EXPECT_TRUE(hit) << "same scales must hit";
  EXPECT_EQ(engine.cache_misses(), 2);
}

}  // namespace
}  // namespace hdnn
