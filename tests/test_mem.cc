#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "common/check.h"
#include "common/prng.h"
#include "mem/dram_model.h"
#include "mem/layout.h"
#include "mem/onchip_buffer.h"

namespace hdnn {
namespace {

TEST(DramModelTest, NonPositiveSizeThrowsWithoutAllocating) {
  // A negative size must be rejected up front: size-constructing the backing
  // vector first would attempt a ~2^64-element allocation and crash in
  // bad_alloc before the precondition could report anything useful.
  EXPECT_THROW(DramModel(-1), InvalidArgument);
  EXPECT_THROW(DramModel(0), InvalidArgument);
  EXPECT_THROW(DramModel(std::numeric_limits<std::int64_t>::min()),
               InvalidArgument);
}

TEST(DramModelTest, ReadWriteRoundTrip) {
  DramModel dram(128);
  dram.Write(5, -1234);
  EXPECT_EQ(dram.Read(5), -1234);
}

TEST(DramModelTest, OutOfRangeThrows) {
  DramModel dram(16);
  EXPECT_THROW(dram.Read(16), InvalidArgument);
  EXPECT_THROW(dram.Write(-1, 0), InvalidArgument);
}

TEST(DramModelTest, BlockTransfer) {
  DramModel dram(64);
  std::vector<std::int16_t> data{1, 2, 3, 4};
  dram.WriteBlock(10, data);
  std::vector<std::int16_t> out(4);
  dram.ReadBlock(10, out);
  EXPECT_EQ(out, data);
}

TEST(DramModelTest, Word32RoundTrip) {
  DramModel dram(8);
  for (std::int32_t v : {0, 1, -1, 65535, -65536, INT32_MAX, INT32_MIN}) {
    dram.Write32(2, v);
    EXPECT_EQ(dram.Read32(2), v) << v;
  }
}

TEST(DramModelTest, BulkRunsValidateAtTheLastWord) {
  DramModel dram(32);
  // Runs ending exactly at size_words() are legal; one word further is not.
  EXPECT_NO_THROW(dram.ReadRun(31, 1));
  EXPECT_NO_THROW(dram.WriteRun(0, 32));
  EXPECT_NO_THROW(dram.ViewRun(16, 16));
  EXPECT_THROW(dram.ReadRun(31, 2), InvalidArgument);
  EXPECT_THROW(dram.WriteRun(1, 32), InvalidArgument);
  EXPECT_THROW(dram.ViewRun(32, 1), InvalidArgument);
  EXPECT_THROW(dram.ReadRun(-1, 1), InvalidArgument);
  EXPECT_THROW(dram.WriteRun(0, -1), InvalidArgument);
}

TEST(DramModelTest, ZeroLengthRunsAreLegalAndFree) {
  DramModel dram(16);
  // Zero-length runs validate addr in [0, size] — including one past the
  // end, the natural "empty tail" position — and touch neither storage nor
  // statistics.
  EXPECT_TRUE(dram.ReadRun(0, 0).empty());
  EXPECT_TRUE(dram.ReadRun(16, 0).empty());
  EXPECT_TRUE(dram.WriteRun(16, 0).empty());
  EXPECT_TRUE(dram.ViewRun(16, 0).empty());
  EXPECT_THROW(dram.ReadRun(17, 0), InvalidArgument);
  EXPECT_THROW(dram.WriteRun(-1, 0), InvalidArgument);
  dram.ReadBlock(16, std::span<std::int16_t>{});
  dram.WriteBlock(16, std::span<const std::int16_t>{});
  EXPECT_EQ(dram.words_read(), 0);
  EXPECT_EQ(dram.words_written(), 0);
}

TEST(DramModelTest, Read32StraddlingEndOfMemoryThrows) {
  DramModel dram(8);
  dram.Write32(6, 0x12345678);  // last legal little-endian pair
  EXPECT_EQ(dram.Read32(6), 0x12345678);
  // A pair whose low word is the last word would read its high word one
  // past the end.
  EXPECT_THROW(dram.Read32(7), InvalidArgument);
  EXPECT_THROW(dram.Write32(7, 1), InvalidArgument);
}

TEST(DramModelTest, BulkAndPerWordPathsCountStatsIdentically) {
  DramModel per_word(64);
  DramModel bulk(64);
  for (std::int64_t i = 0; i < 10; ++i) {
    per_word.Write(3 + i, static_cast<std::int16_t>(100 + i));
  }
  const auto wr = bulk.WriteRun(3, 10);
  for (std::int64_t i = 0; i < 10; ++i) {
    wr[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(100 + i);
  }
  EXPECT_EQ(bulk.words_written(), per_word.words_written());
  for (std::int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(bulk.ViewRun(3 + i, 1)[0], static_cast<std::int16_t>(100 + i));
  }

  std::int64_t sum_a = 0, sum_b = 0;
  for (std::int64_t i = 0; i < 10; ++i) sum_a += per_word.Read(3 + i);
  for (std::int16_t v : bulk.ReadRun(3, 10)) sum_b += v;
  EXPECT_EQ(sum_a, sum_b);
  EXPECT_EQ(bulk.words_read(), per_word.words_read());

  // ViewRun is pure observation: no statistics side effect.
  const std::int64_t reads_before = bulk.words_read();
  (void)bulk.ViewRun(0, 64);
  EXPECT_EQ(bulk.words_read(), reads_before);
}

TEST(DramModelTest, StatisticsCount) {
  DramModel dram(32);
  dram.ResetStats();
  dram.Write(0, 1);
  dram.Read(0);
  dram.Read(0);
  EXPECT_EQ(dram.words_written(), 1);
  EXPECT_EQ(dram.words_read(), 2);
}

TEST(DramModelTest, AllocatorBumpsAndChecks) {
  DramModel dram(100);
  EXPECT_EQ(dram.Allocate(40), 0);
  EXPECT_EQ(dram.Allocate(40), 40);
  EXPECT_THROW(dram.Allocate(40), CapacityError);
}

// --- layouts (paper Fig. 5) ---

TEST(LayoutTest, SpatLayoutIsChannelInnermost) {
  // addr(c,h,w) = (h*W + w)*C + c
  EXPECT_EQ(FmapAddr(ConvMode::kSpatial, 0, 0, 0, 4, 8, 8), 0);
  EXPECT_EQ(FmapAddr(ConvMode::kSpatial, 1, 0, 0, 4, 8, 8), 1);
  EXPECT_EQ(FmapAddr(ConvMode::kSpatial, 0, 0, 1, 4, 8, 8), 4);
  EXPECT_EQ(FmapAddr(ConvMode::kSpatial, 0, 1, 0, 4, 8, 8), 32);
}

TEST(LayoutTest, WinoLayoutIsChannelOutermost) {
  // addr(c,h,w) = (c*H + h)*W + w
  EXPECT_EQ(FmapAddr(ConvMode::kWinograd, 0, 0, 1, 4, 8, 8), 1);
  EXPECT_EQ(FmapAddr(ConvMode::kWinograd, 0, 1, 0, 4, 8, 8), 8);
  EXPECT_EQ(FmapAddr(ConvMode::kWinograd, 1, 0, 0, 4, 8, 8), 64);
}

TEST(LayoutTest, AddressesArePermutation) {
  for (ConvMode layout : {ConvMode::kSpatial, ConvMode::kWinograd}) {
    std::set<std::int64_t> seen;
    for (int c = 0; c < 3; ++c) {
      for (int h = 0; h < 4; ++h) {
        for (int w = 0; w < 5; ++w) {
          const auto addr = FmapAddr(layout, c, h, w, 3, 4, 5);
          EXPECT_GE(addr, 0);
          EXPECT_LT(addr, 60);
          EXPECT_TRUE(seen.insert(addr).second) << "duplicate address";
        }
      }
    }
    EXPECT_EQ(seen.size(), 60u);
  }
}

TEST(LayoutTest, StoreLoadRoundTripBothLayouts) {
  Prng prng(3);
  Tensor<std::int16_t> fmap(Shape{3, 5, 4});
  fmap.FillRandomInt(prng, -100, 100);
  for (ConvMode layout : {ConvMode::kSpatial, ConvMode::kWinograd}) {
    DramModel dram(256);
    StoreFmap(dram, 16, layout, fmap);
    const auto back = LoadFmap(dram, 16, layout, 3, 5, 4);
    EXPECT_EQ(back, fmap);
  }
}

TEST(LayoutTest, CrossLayoutReadIsReordered) {
  Tensor<std::int16_t> fmap(Shape{2, 2, 2});
  for (std::int64_t i = 0; i < 8; ++i) fmap.flat(i) = static_cast<std::int16_t>(i);
  DramModel dram(64);
  StoreFmap(dram, 0, ConvMode::kSpatial, fmap);
  const auto wrong = LoadFmap(dram, 0, ConvMode::kWinograd, 2, 2, 2);
  EXPECT_NE(wrong, fmap);  // layouts genuinely differ
}

TEST(LayoutTest, OutOfBoundsCoordinateThrows) {
  EXPECT_THROW(FmapAddr(ConvMode::kSpatial, 4, 0, 0, 4, 8, 8),
               InvalidArgument);
}

// --- on-chip buffers ---

TEST(PingPongBufferTest, HalvesAreIndependent) {
  PingPongBuffer buf("test", 16);
  buf.Write(0, 3, 111);
  buf.Write(1, 3, 222);
  EXPECT_EQ(buf.Read(0, 3), 111);
  EXPECT_EQ(buf.Read(1, 3), 222);
}

TEST(PingPongBufferTest, CapacityEnforced) {
  PingPongBuffer buf("test", 8);
  EXPECT_THROW(buf.Write(0, 8, 1), InvalidArgument);
  EXPECT_THROW(buf.Read(2, 0), InvalidArgument);
}

TEST(PingPongBufferTest, FillHalf) {
  PingPongBuffer buf("test", 4);
  buf.FillHalf(0, 9);
  EXPECT_EQ(buf.Read(0, 3), 9);
  EXPECT_EQ(buf.Read(1, 3), 0);
}

// --- Table 1 partition factors ---

TEST(PartitionTest, Table1FactorsWinograd) {
  AccelConfig cfg;
  cfg.pi = 4;
  cfg.po = 4;
  cfg.pt = 6;
  const auto in = InBufferPartition(ConvMode::kWinograd, cfg);
  EXPECT_EQ(in.in_channel, 4);
  EXPECT_EQ(in.fmap_row, 6);
  EXPECT_EQ(in.fmap_col, 6);
  EXPECT_EQ(in.total(), 144);
  const auto wgt = WgtBufferPartition(ConvMode::kWinograd, cfg);
  EXPECT_EQ(wgt.total(), 4 * 4 * 36);
  const auto out = OutBufferPartition(ConvMode::kWinograd, cfg);
  EXPECT_EQ(out.out_channel, 4);
  EXPECT_EQ(out.fmap_row, 4);  // m
  EXPECT_EQ(out.total(), 64);
}

TEST(PartitionTest, Table1FactorsSpatial) {
  AccelConfig cfg;
  cfg.pi = 4;
  cfg.po = 4;
  cfg.pt = 6;
  const auto in = InBufferPartition(ConvMode::kSpatial, cfg);
  EXPECT_EQ(in.in_channel, 24);  // PI * PT
  EXPECT_EQ(in.fmap_row, 1);
  const auto wgt = WgtBufferPartition(ConvMode::kSpatial, cfg);
  EXPECT_EQ(wgt.in_channel, 24);
  EXPECT_EQ(wgt.out_channel, 24);
  EXPECT_EQ(wgt.wgt_row, 1);
  const auto out = OutBufferPartition(ConvMode::kSpatial, cfg);
  EXPECT_EQ(out.out_channel, 24);
}

TEST(PartitionTest, SpatialAndWinogradBankCountsMatchForWeights) {
  // The same physical array serves both modes: total partition counts of
  // the weight buffer agree (PI*PT * PO*PT == PI*PO*PT^2).
  AccelConfig cfg;
  for (int pt : {4, 6}) {
    cfg.pt = pt;
    EXPECT_EQ(WgtBufferPartition(ConvMode::kSpatial, cfg).total(),
              WgtBufferPartition(ConvMode::kWinograd, cfg).total());
  }
}

TEST(PartitionTest, WinogradAccessHitsDistinctBanks) {
  // One PE cycle in Winograd mode reads PI channels x PT rows x PT cols;
  // under the Table 1 partitioning these must be pairwise distinct banks.
  AccelConfig cfg;
  cfg.pi = 4;
  cfg.po = 4;
  cfg.pt = 4;
  std::set<int> banks;
  for (int c = 0; c < cfg.pi; ++c) {
    for (int r = 0; r < cfg.pt; ++r) {
      for (int w = 0; w < cfg.pt; ++w) {
        banks.insert(InBufferBank(ConvMode::kWinograd, cfg, c, 10 + r, 20 + w));
      }
    }
  }
  EXPECT_EQ(banks.size(),
            static_cast<std::size_t>(cfg.pi * cfg.pt * cfg.pt));
}

TEST(PartitionTest, SpatialAccessHitsDistinctBanks) {
  AccelConfig cfg;
  cfg.pi = 4;
  cfg.po = 4;
  cfg.pt = 4;
  std::set<int> banks;
  for (int c = 0; c < cfg.pi * cfg.pt; ++c) {
    banks.insert(InBufferBank(ConvMode::kSpatial, cfg, c, 7, 13));
  }
  EXPECT_EQ(banks.size(), static_cast<std::size_t>(cfg.pi * cfg.pt));
}

}  // namespace
}  // namespace hdnn
