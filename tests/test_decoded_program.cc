// Decode-once program cache: a DecodedProgram is a pure function of the
// program bytes, and executing it — repeatedly, across DramModel::Reset,
// from the compiler's cached copy or from a fresh decode — must be bit- and
// cycle-identical to Accelerator::Run on the raw instruction vector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>

#include "nn/builders.h"
#include "runtime/runtime.h"
#include "sim/decoded_program.h"
#include "tests/testing_util.h"

namespace hdnn {
namespace {

using ::hdnn::testing::MakeInput;
using ::hdnn::testing::TestConfig;
using ::hdnn::testing::TestSpec;

/// Two layers covering both CONV modes, a fused pool and a layout
/// transform — enough to populate all four module queues.
Model SmallMixedModel() {
  Model m("decoded_mixed", FmapShape{8, 14, 14});
  ConvLayer l1;
  l1.name = "wino";
  l1.in_channels = 8;
  l1.out_channels = 16;
  l1.relu = true;
  m.Append(l1);
  ConvLayer l2;
  l2.name = "spat";
  l2.in_channels = 16;
  l2.out_channels = 8;
  l2.pool = 2;
  m.Append(l2);
  return m;
}

std::vector<LayerMapping> SmallMixedMapping() {
  return {
      {ConvMode::kWinograd, Dataflow::kInputStationary},
      {ConvMode::kSpatial, Dataflow::kInputStationary},
  };
}

void ExpectStatsIdentical(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.ldi_busy, b.ldi_busy);
  EXPECT_EQ(a.ldw_busy, b.ldw_busy);
  EXPECT_EQ(a.comp_busy, b.comp_busy);
  EXPECT_EQ(a.save_busy, b.save_busy);
  EXPECT_EQ(a.port_busy, b.port_busy);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.dram_words_read, b.dram_words_read);
  EXPECT_EQ(a.dram_words_written, b.dram_words_written);
  EXPECT_EQ(a.macs_executed, b.macs_executed);
}

TEST(DecodedProgramTest, MatchesPerInstructionDecode) {
  const AccelConfig cfg = TestConfig(4);
  const Compiler compiler(cfg, TestSpec());
  const CompiledModel cm =
      compiler.Compile(SmallMixedModel(), SmallMixedMapping());

  const DecodedProgram prog = DecodeProgram(cm.program);
  ASSERT_EQ(prog.size(), cm.program.size());
  std::size_t queued = 0;
  for (const auto& queue : prog.queues) queued += queue.size();
  std::size_t arch = 0;
  for (std::size_t i = 0; i < cm.program.size(); ++i) {
    const InstrFields fresh = Decode(cm.program[i]);
    EXPECT_EQ(prog.fields[i], fresh) << "instruction " << i;
    const Opcode op = OpcodeOf(fresh);
    if (op == Opcode::kNop || op == Opcode::kEnd) continue;
    ++arch;
    // The instruction must sit in exactly its module's queue, in order.
    const auto& queue = prog.queues[SimModuleOf(op)];
    EXPECT_TRUE(std::find(queue.begin(), queue.end(),
                          static_cast<std::uint32_t>(i)) != queue.end())
        << "instruction " << i << " missing from its module queue";
  }
  EXPECT_EQ(queued, arch);
  for (const auto& queue : prog.queues) {
    EXPECT_TRUE(std::is_sorted(queue.begin(), queue.end()))
        << "module queues must preserve program order";
  }
}

TEST(DecodedProgramTest, CompilerAttachesTheDecodeOnceCache) {
  const AccelConfig cfg = TestConfig(4);
  const Compiler compiler(cfg, TestSpec());
  const CompiledModel cm =
      compiler.Compile(SmallMixedModel(), SmallMixedMapping());
  ASSERT_NE(cm.decoded, nullptr);
  ASSERT_EQ(cm.decoded->size(), cm.program.size());
  for (std::size_t i = 0; i < cm.program.size(); ++i) {
    EXPECT_EQ(cm.decoded->fields[i], Decode(cm.program[i]));
  }
}

// One DecodedProgram executed repeatedly on a persistent Accelerator —
// across DramModel::Reset, interleaved with fresh per-run decodes — must
// produce bit-identical DRAM contents and cycle-identical SimStats every
// time. This is the serving steady state (the engine's workers run the
// compiler's cached decode for every batch item).
TEST(DecodedProgramTest, ReuseAcrossResetIsBitAndCycleIdentical) {
  const Model model = SmallMixedModel();
  const AccelConfig cfg = TestConfig(4);
  const FpgaSpec spec = TestSpec();
  const Compiler compiler(cfg, spec);
  const CompiledModel cm = compiler.Compile(model, SmallMixedMapping());
  const ModelWeightsQ weights = SyntheticWeights(model, 21);
  const Tensor<std::int16_t> input = MakeInput(model.InputOf(0), 22);
  const LayerPlan& first = cm.plans.front();
  const LayerPlan& last = cm.plans.back();

  const std::int64_t dram_words = cm.total_dram_words + 1024;
  DramModel dram(dram_words);
  Accelerator accel(cfg, spec, dram);

  const auto run = [&](bool use_decoded) {
    dram.Reset(dram_words);
    WriteWeightImages(cm, model, weights, dram);
    StageInputFmap(dram, cm.input_region(0), first.input_layout, input,
                   first.cp_in);
    SimStats stats =
        use_decoded ? accel.Run(*cm.decoded) : accel.Run(cm.program);
    Tensor<std::int16_t> out =
        CollectOutputFmap(dram, cm.output_region(model.num_layers() - 1),
                          last.output_layout, last.out_shape, last.cp_out);
    return std::make_pair(std::move(stats), std::move(out));
  };

  const auto [stats_fresh, out_fresh] = run(/*use_decoded=*/false);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto [stats_cached, out_cached] = run(/*use_decoded=*/true);
    ExpectStatsIdentical(stats_cached, stats_fresh);
    EXPECT_EQ(out_cached, out_fresh) << "repeat " << repeat;
  }
  // And a fresh decode after the cached runs: no hidden state in either
  // direction.
  const auto [stats_again, out_again] = run(/*use_decoded=*/false);
  ExpectStatsIdentical(stats_again, stats_fresh);
  EXPECT_EQ(out_again, out_fresh);
}

// The Runtime consumes the cached decode when present and falls back to
// validate + decode per run when it is absent; both paths must agree.
TEST(DecodedProgramTest, RuntimeWithAndWithoutCachedDecodeAgree) {
  const Model model = SmallMixedModel();
  const AccelConfig cfg = TestConfig(4);
  const FpgaSpec spec = TestSpec();
  const Compiler compiler(cfg, spec);
  const CompiledModel cm = compiler.Compile(model, SmallMixedMapping());
  CompiledModel plain = cm;
  plain.decoded.reset();

  const ModelWeightsQ weights = SyntheticWeights(model, 5);
  const Tensor<std::int16_t> input = MakeInput(model.InputOf(0), 6);
  Runtime cached_rt(cfg, spec);
  Runtime plain_rt(cfg, spec);
  const RunReport cached = cached_rt.Execute(model, cm, weights, input);
  const RunReport fresh = plain_rt.Execute(model, plain, weights, input);
  ExpectStatsIdentical(cached.stats, fresh.stats);
  EXPECT_EQ(cached.output, fresh.output);
}

}  // namespace
}  // namespace hdnn
