#include <gtest/gtest.h>

#include "estimator/latency_model.h"
#include "estimator/resource_model.h"
#include "nn/builders.h"
#include "platform/fpga_spec.h"
#include "platform/power_model.h"
#include "platform/profile_constants.h"

namespace hdnn {
namespace {

AccelConfig Vu9pConfig() {
  AccelConfig cfg;
  cfg.pi = 4;
  cfg.po = 4;
  cfg.pt = 6;
  cfg.ni = 6;
  cfg.input_buffer_vectors = 16384;
  cfg.weight_buffer_vectors = 4608;
  cfg.output_buffer_vectors = 8192;
  return cfg;
}

AccelConfig PynqConfig() {
  AccelConfig cfg;
  cfg.pi = 4;
  cfg.po = 4;
  cfg.pt = 4;
  cfg.ni = 1;
  cfg.input_buffer_vectors = 8192;
  cfg.weight_buffer_vectors = 2304;
  cfg.output_buffer_vectors = 8192;
  return cfg;
}

// --- resource models at the paper's two design points (Table 3) ---

TEST(ResourceModelTest, Vu9pDspCloseToPaper) {
  const auto est = ImplementationResources(Vu9pConfig(), Vu9pSpec(),
                                           DefaultProfile());
  EXPECT_NEAR(est.dsps, 5163, 5163 * 0.01);  // paper: 5163
}

TEST(ResourceModelTest, PynqDspMatchesPaperExactly) {
  const auto est = ImplementationResources(PynqConfig(), PynqZ1Spec(),
                                           DefaultProfile());
  EXPECT_EQ(est.dsps, 220);  // paper: 220 (100% of the part)
}

TEST(ResourceModelTest, Vu9pLutCloseToPaper) {
  const auto est = ImplementationResources(Vu9pConfig(), Vu9pSpec(),
                                           DefaultProfile());
  EXPECT_NEAR(est.luts, 706353, 706353 * 0.03);  // paper: 706353
}

TEST(ResourceModelTest, PynqLutCloseToPaper) {
  const auto est = ImplementationResources(PynqConfig(), PynqZ1Spec(),
                                           DefaultProfile());
  EXPECT_NEAR(est.luts, 37034, 37034 * 0.05);  // paper: 37034
}

TEST(ResourceModelTest, Vu9pBramCloseToPaper) {
  const auto est = ImplementationResources(Vu9pConfig(), Vu9pSpec(),
                                           DefaultProfile());
  EXPECT_NEAR(est.bram18, 3169, 3169 * 0.10);  // paper: 3169
}

TEST(ResourceModelTest, PynqBramCloseToPaper) {
  const auto est = ImplementationResources(PynqConfig(), PynqZ1Spec(),
                                           DefaultProfile());
  EXPECT_NEAR(est.bram18, 277, 277 * 0.10);  // paper: 277
}

TEST(ResourceModelTest, AnalyticalTracksImplementationWithin15Percent) {
  // The Eq. 3-5 analytical model must be close enough to drive the DSE.
  for (const auto& [cfg, spec] :
       {std::pair{Vu9pConfig(), Vu9pSpec()},
        std::pair{PynqConfig(), PynqZ1Spec()}}) {
    const auto ana = AnalyticalResources(cfg, spec, DefaultProfile());
    const auto impl = ImplementationResources(cfg, spec, DefaultProfile());
    EXPECT_NEAR(ana.dsps, impl.dsps, impl.dsps * 0.15) << spec.name;
    EXPECT_NEAR(ana.luts, impl.luts, impl.luts * 0.15) << spec.name;
  }
}

TEST(ResourceModelTest, HybridLutOverheadMatches26Percent) {
  // Paper Sec. 6.1: hybrid support costs 26.4% extra LUTs, no extra DSPs.
  const auto hybrid = ImplementationResources(Vu9pConfig(), Vu9pSpec(),
                                              DefaultProfile(), true);
  const auto spatial = ImplementationResources(Vu9pConfig(), Vu9pSpec(),
                                               DefaultProfile(), false);
  const double overhead = hybrid.luts / spatial.luts - 1.0;
  EXPECT_NEAR(overhead, 0.264, 0.03);
  EXPECT_EQ(hybrid.dsps, spatial.dsps);
}

TEST(ResourceModelTest, ResourcesScaleWithParallelism) {
  AccelConfig small = PynqConfig();
  AccelConfig big = PynqConfig();
  big.pi = 8;
  const auto s = AnalyticalResources(small, PynqZ1Spec(), DefaultProfile());
  const auto b = AnalyticalResources(big, PynqZ1Spec(), DefaultProfile());
  EXPECT_GT(b.dsps, s.dsps);
  EXPECT_GT(b.luts, s.luts);
  EXPECT_GT(b.bram18, s.bram18);
}

TEST(ResourceModelTest, FitsOnPlatformRespectsDies) {
  AccelConfig cfg = Vu9pConfig();
  const auto est = ImplementationResources(cfg, Vu9pSpec(), DefaultProfile());
  EXPECT_TRUE(FitsOnPlatform(est, cfg, Vu9pSpec()));
  // An instance bigger than a die must fail even if the total fits.
  ResourceEstimate monster = est;
  monster.dsps = Vu9pSpec().dsps_per_die() * 1.5;
  AccelConfig one = cfg;
  one.ni = 1;
  EXPECT_FALSE(FitsOnPlatform(monster, one, Vu9pSpec()));
}

// --- power model (Table 4 measurement substitute) ---

TEST(PowerModelTest, CalibratedAtPaperDesignPoints) {
  const PowerModel pm;
  const ResourceUsage vu9p{706353, 5163, 3169};
  EXPECT_NEAR(pm.TotalWatts(Vu9pSpec(), vu9p), 45.9, 1.5);  // paper 45.9 W
  const ResourceUsage pynq{37034, 220, 277};
  EXPECT_NEAR(pm.TotalWatts(PynqZ1Spec(), pynq), 2.6, 0.2);  // paper 2.6 W
}

// --- partitioning (Sec. 4.2.4) ---

TEST(GroupsTest, SpatialGroupsAreRows) {
  const Model m = BuildSingleConv(16, 16, 32, 32, 3);
  const auto g = ComputeGroups(m.layer(0), m.InputOf(0), ConvMode::kSpatial,
                               PynqConfig());
  EXPECT_EQ(g.rows_per_group, 1);
  EXPECT_EQ(g.num_groups, 32);  // H groups
}

TEST(GroupsTest, WinogradGroupsAreMRows) {
  const Model m = BuildSingleConv(16, 16, 32, 32, 3);
  AccelConfig cfg = Vu9pConfig();  // m = 4
  const auto g =
      ComputeGroups(m.layer(0), m.InputOf(0), ConvMode::kWinograd, cfg);
  EXPECT_EQ(g.rows_per_group, 4);
  EXPECT_EQ(g.num_groups, 8);  // H/m groups
}

TEST(GroupsTest, PoolEnlargesGroups) {
  Model m("m", FmapShape{16, 32, 32});
  ConvLayer l;
  l.name = "l";
  l.in_channels = 16;
  l.out_channels = 16;
  l.pool = 2;
  m.Append(l);
  const auto g = ComputeGroups(m.layer(0), m.InputOf(0), ConvMode::kSpatial,
                               PynqConfig());
  EXPECT_EQ(g.rows_per_group, 2);  // pool window must stay in one group
}

TEST(GroupsTest, SlicesFollowKernelDecomposition) {
  const Model m = BuildSingleConv(8, 8, 16, 16, 5);
  const auto g = ComputeGroups(m.layer(0), m.InputOf(0), ConvMode::kWinograd,
                               PynqConfig());
  EXPECT_EQ(g.slices, 4);
}

TEST(GroupsTest, TinyBufferThrowsCapacityError) {
  const Model m = BuildSingleConv(512, 512, 224, 224, 3);
  AccelConfig cfg = PynqConfig();
  cfg.input_buffer_vectors = 8;
  EXPECT_THROW(
      ComputeGroups(m.layer(0), m.InputOf(0), ConvMode::kSpatial, cfg),
      CapacityError);
}

// --- latency model (Eqs. 6-15) ---

TEST(LatencyTest, WinogradComputeIsFasterFor3x3) {
  // Dimensions divisible by PI*PT = 24 and the m = 4 tile, so the Eq. 6/7
  // ratio is exactly the per-tile multiplication reduction.
  const Model m = BuildSingleConv(96, 96, 48, 48, 3);
  const auto spat =
      EstimateLayerLatency(m.layer(0), m.InputOf(0), ConvMode::kSpatial,
                           Dataflow::kInputStationary, Vu9pConfig(), Vu9pSpec());
  const auto wino =
      EstimateLayerLatency(m.layer(0), m.InputOf(0), ConvMode::kWinograd,
                           Dataflow::kInputStationary, Vu9pConfig(), Vu9pSpec());
  // Eq. 6 vs Eq. 7: 4x fewer compute cycles for F(4x4,3x3).
  EXPECT_NEAR(spat.t_cp / wino.t_cp, 4.0, 0.1);
  // Eq. 8 vs Eq. 9: Winograd loads 4x more weight data.
  EXPECT_NEAR(wino.t_ldw / spat.t_ldw, 4.0, 0.1);
}

TEST(LatencyTest, WinogradWeightTrafficFor5x5Is576Over25) {
  // Paper Sec. 5.2 example: 5x5 kernel => 2*2*36/25 = 5.76x load latency.
  const Model m = BuildSingleConv(32, 32, 28, 28, 5);
  const auto spat =
      EstimateLayerLatency(m.layer(0), m.InputOf(0), ConvMode::kSpatial,
                           Dataflow::kInputStationary, Vu9pConfig(), Vu9pSpec());
  const auto wino =
      EstimateLayerLatency(m.layer(0), m.InputOf(0), ConvMode::kWinograd,
                           Dataflow::kInputStationary, Vu9pConfig(), Vu9pSpec());
  EXPECT_NEAR(wino.t_ldw / spat.t_ldw, 5.76, 0.05);
}

TEST(LatencyTest, MemoryBoundWinogradLosesItsAdvantage) {
  // With tiny DRAM bandwidth the Winograd weight stream (4x more data for
  // PT=6, Eq. 9) dominates: comparing each mode's *best* dataflow, Spatial
  // wins (the paper's IoT discussion, Sec. 6.2).
  FpgaSpec starved = Vu9pSpec();
  starved.dram_bandwidth_gbps = 0.1;
  AccelConfig cfg = Vu9pConfig();
  cfg.ni = 1;
  const Model m = BuildSingleConv(128, 128, 14, 14, 3);
  auto best = [&](ConvMode mode) {
    const auto is =
        EstimateLayerLatency(m.layer(0), m.InputOf(0), mode,
                             Dataflow::kInputStationary, cfg, starved);
    const auto ws =
        EstimateLayerLatency(m.layer(0), m.InputOf(0), mode,
                             Dataflow::kWeightStationary, cfg, starved);
    return std::min(is.total, ws.total);
  };
  EXPECT_GT(best(ConvMode::kWinograd), best(ConvMode::kSpatial));
}

TEST(LatencyTest, IsPreferredForLargeFmapsWsForSmall) {
  // Paper Sec. 4.2.5: "IS prefers larger feature maps compared to WS".
  const AccelConfig cfg = PynqConfig();
  const FpgaSpec spec = PynqZ1Spec();
  const Model big = BuildSingleConv(64, 64, 112, 112, 3);
  const auto big_is =
      EstimateLayerLatency(big.layer(0), big.InputOf(0), ConvMode::kSpatial,
                           Dataflow::kInputStationary, cfg, spec);
  const auto big_ws =
      EstimateLayerLatency(big.layer(0), big.InputOf(0), ConvMode::kSpatial,
                           Dataflow::kWeightStationary, cfg, spec);
  EXPECT_LE(big_is.total, big_ws.total);

  const Model small = BuildSingleConv(512, 512, 7, 7, 3);
  const auto small_is =
      EstimateLayerLatency(small.layer(0), small.InputOf(0),
                           ConvMode::kSpatial, Dataflow::kInputStationary, cfg,
                           spec);
  const auto small_ws =
      EstimateLayerLatency(small.layer(0), small.InputOf(0),
                           ConvMode::kSpatial, Dataflow::kWeightStationary, cfg,
                           spec);
  EXPECT_LE(small_ws.total, small_is.total);
}

TEST(LatencyTest, TotalIsMaxPlusPenalty) {
  const Model m = BuildSingleConv(32, 32, 28, 28, 3);
  const auto lb =
      EstimateLayerLatency(m.layer(0), m.InputOf(0), ConvMode::kSpatial,
                           Dataflow::kInputStationary, PynqConfig(),
                           PynqZ1Spec());
  EXPECT_GE(lb.total, lb.t_cp);
  EXPECT_GE(lb.total, lb.t_sv);
  EXPECT_GT(lb.penalty, 0);
  EXPECT_LT(lb.penalty, lb.total);
}

TEST(LatencyTest, WinogradRequiresStride1) {
  const Model m = BuildSingleConv(8, 8, 16, 16, 3, 2);
  EXPECT_FALSE(WinogradApplicable(m.layer(0)));
  EXPECT_THROW(
      EstimateLayerLatency(m.layer(0), m.InputOf(0), ConvMode::kWinograd,
                           Dataflow::kInputStationary, PynqConfig(),
                           PynqZ1Spec()),
      InvalidArgument);
}

TEST(LatencyTest, ModelLatencySumsLayers) {
  const Model m = BuildTinyCnn();
  std::vector<LayerMapping> mapping(
      static_cast<std::size_t>(m.num_layers()),
      LayerMapping{ConvMode::kSpatial, Dataflow::kInputStationary});
  const double total =
      EstimateModelLatencyCycles(m, mapping, PynqConfig(), PynqZ1Spec());
  double sum = 0;
  for (int i = 0; i < m.num_layers(); ++i) {
    sum += EstimateLayerLatency(m.layer(i), m.InputOf(i), ConvMode::kSpatial,
                                Dataflow::kInputStationary, PynqConfig(),
                                PynqZ1Spec())
               .total;
  }
  EXPECT_DOUBLE_EQ(total, sum);
}

TEST(LatencyTest, ThroughputScalesWithInstances) {
  AccelConfig cfg = Vu9pConfig();
  const double one = ThroughputGops(1e9, 1e6, cfg, Vu9pSpec());
  cfg.ni = 3;
  // Same per-instance cycles, 3 instances => 2x the config with ni=6? No:
  // ThroughputGops just multiplies by ni.
  EXPECT_NEAR(ThroughputGops(1e9, 1e6, cfg, Vu9pSpec()), one / 2.0, 1e-9);
}

}  // namespace
}  // namespace hdnn
