#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "nn/builders.h"
#include "runtime/runtime.h"
#include "runtime/server.h"
#include "tests/testing_util.h"

namespace hdnn {
namespace {

using testing::MakeInput;
using testing::TestConfig;
using testing::TestSpec;

std::vector<Tensor<std::int16_t>> MakeBatch(const Model& model, int n,
                                            std::uint64_t seed) {
  std::vector<Tensor<std::int16_t>> batch;
  batch.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    batch.push_back(
        MakeInput(model.InputOf(0), seed + static_cast<std::uint64_t>(i)));
  }
  return batch;
}

std::vector<LayerMapping> UniformMapping(const Model& model, ConvMode mode,
                                         Dataflow flow) {
  return std::vector<LayerMapping>(
      static_cast<std::size_t>(model.num_layers()), LayerMapping{mode, flow});
}

// --- thread pool ---

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expect = 0;
  for (int i = 0; i < 64; ++i) expect += i * i;
  EXPECT_EQ(sum, expect);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw InvalidArgument("boom"); });
  EXPECT_THROW(f.get(), InvalidArgument);
}

TEST(ThreadPoolTest, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
  EXPECT_THROW(ThreadPool(-3), InvalidArgument);
}

// --- inference engine ---

TEST(InferenceEngineTest, BatchBitIdenticalToSequentialExecute) {
  const Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  const FpgaSpec spec = TestSpec();
  const auto mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);
  const ModelWeightsQ weights = SyntheticWeights(model, 7);
  const auto batch = MakeBatch(model, 6, 100);

  InferenceEngine engine(spec, 3);
  const BatchReport report =
      engine.ExecuteBatch(model, cfg, mapping, weights, batch);
  ASSERT_EQ(report.items.size(), batch.size());

  // Sequential reference through the plain single-shot runtime.
  const Compiler compiler(cfg, spec);
  const CompiledModel compiled = compiler.Compile(model, mapping);
  Runtime runtime(cfg, spec);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const RunReport seq =
        runtime.Execute(model, compiled, weights, batch[i]);
    EXPECT_EQ(report.items[i].output, seq.output) << "item " << i;
    EXPECT_EQ(report.items[i].stats.total_cycles, seq.stats.total_cycles)
        << "item " << i;
  }
}

TEST(InferenceEngineTest, ProgramCacheHitsSkipRecompilation) {
  const Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  const auto mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);
  const ModelWeightsQ weights = SyntheticWeights(model, 7);
  const auto batch = MakeBatch(model, 2, 5);

  InferenceEngine engine(TestSpec(), 2);
  const auto p1 = engine.GetOrCompile(model, cfg, mapping);
  EXPECT_EQ(engine.cache_misses(), 1);
  EXPECT_EQ(engine.cache_hits(), 0);

  const auto p2 = engine.GetOrCompile(model, cfg, mapping);
  EXPECT_EQ(p1.get(), p2.get()) << "second lookup must reuse the program";
  EXPECT_EQ(engine.cache_misses(), 1);
  EXPECT_EQ(engine.cache_hits(), 1);

  const BatchReport first =
      engine.ExecuteBatch(model, cfg, mapping, weights, batch);
  EXPECT_TRUE(first.cache_hit);
  EXPECT_EQ(engine.cache_misses(), 1) << "ExecuteBatch must not recompile";
  EXPECT_EQ(engine.cache_size(), 1u);

  // A different config is a different deployment: one more miss.
  AccelConfig other = cfg;
  other.pt = 6;
  engine.ExecuteBatch(model, other, mapping, weights, batch);
  EXPECT_EQ(engine.cache_misses(), 2);
  EXPECT_EQ(engine.cache_size(), 2u);

  // A different mapping also re-keys the cache.
  const auto wino =
      UniformMapping(model, ConvMode::kWinograd, Dataflow::kInputStationary);
  engine.GetOrCompile(model, cfg, wino);
  EXPECT_EQ(engine.cache_misses(), 3);
}

TEST(InferenceEngineTest, FourWorkerRunIsDeterministicAcrossRepeats) {
  const Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  const auto mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);
  const ModelWeightsQ weights = SyntheticWeights(model, 9);
  const auto batch = MakeBatch(model, 9, 40);  // deliberately not % 4 == 0

  InferenceEngine engine(TestSpec(), 4);
  const BatchReport a = engine.ExecuteBatch(model, cfg, mapping, weights, batch);
  const BatchReport b = engine.ExecuteBatch(model, cfg, mapping, weights, batch);
  ASSERT_EQ(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].output, b.items[i].output) << "item " << i;
    EXPECT_EQ(a.items[i].stats.total_cycles, b.items[i].stats.total_cycles);
  }
  EXPECT_EQ(a.sim_makespan_seconds, b.sim_makespan_seconds);
  EXPECT_EQ(a.aggregate_effective_gops, b.aggregate_effective_gops);
}

TEST(InferenceEngineTest, AggregateThroughputScalesWithWorkerInstances) {
  const Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  const auto mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);
  const ModelWeightsQ weights = SyntheticWeights(model, 7);
  const auto batch = MakeBatch(model, 8, 70);

  InferenceEngine one(TestSpec(), 1);
  InferenceEngine four(TestSpec(), 4);
  const BatchReport r1 = one.ExecuteBatch(model, cfg, mapping, weights, batch);
  const BatchReport r4 = four.ExecuteBatch(model, cfg, mapping, weights, batch);

  // Identical per-item simulated latency; 4 share-nothing instances cut the
  // batch makespan 4x exactly (8 equal items, round-robin 2 per worker).
  EXPECT_GT(r1.sim_makespan_seconds, 0);
  EXPECT_NEAR(r4.sim_makespan_seconds, r1.sim_makespan_seconds / 4,
              r1.sim_makespan_seconds * 1e-9);
  EXPECT_GT(r4.aggregate_effective_gops,
            1.8 * r1.aggregate_effective_gops);
}

// Batch serving of a residual network: the compiled-program cache, the
// share-nothing workers and the SAVE_RES fused add must compose — every
// batch item must equal both a sequential Runtime::Execute and the
// graph-aware golden forward.
TEST(InferenceEngineTest, ResidualNetworkBatchMatchesSequentialAndGolden) {
  const Model model = BuildTinyResidualBlock();
  const AccelConfig cfg = TestConfig();
  std::vector<LayerMapping> mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);
  mapping[0].mode = ConvMode::kWinograd;  // stem is stride-1
  const ModelWeightsQ weights = SyntheticWeights(model, 21);
  const auto batch = MakeBatch(model, 6, 500);

  InferenceEngine engine(TestSpec(), 3);
  const BatchReport report =
      engine.ExecuteBatch(model, cfg, mapping, weights, batch);
  ASSERT_EQ(report.items.size(), batch.size());

  const Compiler compiler(cfg, TestSpec());
  const CompiledModel cm = compiler.Compile(model, mapping);
  Runtime runtime(cfg, TestSpec());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const RunReport seq = runtime.Execute(model, cm, weights, batch[i]);
    EXPECT_EQ(report.items[i].output, seq.output) << "item " << i;
    std::vector<LayerMapping> effective;
    for (const LayerPlan& plan : cm.plans) effective.push_back(plan.mapping);
    const Tensor<std::int16_t> golden = testing::GoldenForward(
        model, weights, batch[i], effective, cfg, cm.base_shift);
    EXPECT_EQ(report.items[i].output, golden) << "item " << i;
  }
}

// Two models with identical layer stacks but different wiring must never
// share a compiled program: the structural hash covers the graph edges.
TEST(ModelStructuralHashTest, DistinguishesGraphEdges) {
  auto build = [](bool with_add) {
    Model m("m", FmapShape{4, 8, 8});
    ConvLayer a;
    a.name = "a";
    a.in_channels = 4;
    a.out_channels = 8;
    m.Append(a);
    ConvLayer b;
    b.name = "b";
    b.in_channels = 8;
    b.out_channels = 8;
    m.Append(b);
    ConvLayer c;
    c.name = "c";
    c.in_channels = 8;
    c.out_channels = 8;
    if (with_add) c.add = "a";
    m.Append(c);
    return m;
  };
  const Model chain = build(false);
  const Model skip = build(true);
  const auto mapping =
      UniformMapping(chain, ConvMode::kSpatial, Dataflow::kInputStationary);
  EXPECT_NE(ModelStructuralHash(chain, mapping),
            ModelStructuralHash(skip, mapping));

  // Different `from` wiring with identical layer fields also separates.
  Model branch("m", FmapShape{4, 8, 8});
  ConvLayer a;
  a.name = "a";
  a.in_channels = 4;
  a.out_channels = 4;
  branch.Append(a);
  ConvLayer b = a;
  b.name = "b";
  branch.Append(b);
  Model branch2 = branch;
  ConvLayer c = a;
  c.name = "c";
  branch.Append(c);          // from previous (b)
  ConvLayer c2 = c;
  c2.from = "a";
  branch2.Append(c2);        // from a
  // The from string differs, and so does the resolved edge — but the hash
  // must differ even though per-layer geometry fields are identical.
  EXPECT_NE(ModelStructuralHash(branch, mapping),
            ModelStructuralHash(branch2, mapping));
}

TEST(InferenceEngineTest, EmptyBatchIsANoOp) {
  const Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  const auto mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);
  InferenceEngine engine(TestSpec(), 2);
  const BatchReport report = engine.ExecuteBatch(
      model, cfg, mapping, SyntheticWeights(model, 7), {});
  EXPECT_TRUE(report.items.empty());
  EXPECT_EQ(report.sim_makespan_seconds, 0);
}

// --- program-cache key audit ---
//
// Every AccelConfig field affects compilation (tiling, buffer budgets,
// quantisation, instance bandwidth share), so two deployments differing in
// ANY field must occupy distinct cache entries. This audit exercises the
// private CacheKey equality + CacheKeyHash through the engine: for each
// field, a mutated config must produce a fresh cache miss, never a hit on
// the base entry.
TEST(InferenceEngineTest, CacheKeyCoversEveryAccelConfigField) {
  // Compile-time tripwire: if AccelConfig grows a field, this sizeof
  // changes — update CacheKeyHash in engine.cc AND the mutation list below,
  // then adjust the expected size.
  static_assert(sizeof(AccelConfig) == 9 * sizeof(int),
                "AccelConfig changed: audit InferenceEngine::CacheKeyHash "
                "and this test's mutation list");

  const Model model = BuildTinyCnn();
  const auto mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);

  // One mutation per field, each keeping the config valid and compilable
  // for the tiny model.
  const AccelConfig base = TestConfig();
  std::vector<std::pair<const char*, AccelConfig>> mutations;
  {
    AccelConfig c = base;
    c.pi = 8;
    mutations.emplace_back("pi", c);
  }
  {
    AccelConfig c = base;
    c.pi = 8;
    c.po = 8;
    mutations.emplace_back("po", c);
  }
  {
    AccelConfig c = base;
    c.pt = 6;
    mutations.emplace_back("pt", c);
  }
  {
    AccelConfig c = base;
    c.ni = 2;
    mutations.emplace_back("ni", c);
  }
  {
    AccelConfig c = base;
    c.data_width = 10;
    mutations.emplace_back("data_width", c);
  }
  {
    AccelConfig c = base;
    c.wgt_width = 6;
    mutations.emplace_back("wgt_width", c);
  }
  {
    AccelConfig c = base;
    c.input_buffer_vectors /= 2;
    mutations.emplace_back("input_buffer_vectors", c);
  }
  {
    AccelConfig c = base;
    c.weight_buffer_vectors /= 2;
    mutations.emplace_back("weight_buffer_vectors", c);
  }
  {
    AccelConfig c = base;
    c.output_buffer_vectors /= 2;
    mutations.emplace_back("output_buffer_vectors", c);
  }
  ASSERT_EQ(mutations.size(), 9u) << "one mutation per AccelConfig field";

  InferenceEngine engine(TestSpec(), 1);
  bool hit = true;
  engine.GetOrCompile(model, base, mapping, &hit);
  EXPECT_FALSE(hit);

  std::int64_t expected_misses = 1;
  for (const auto& [field, cfg] : mutations) {
    SCOPED_TRACE(field);
    ASSERT_FALSE(cfg == base) << "mutation did not change the config";
    engine.GetOrCompile(model, cfg, mapping, &hit);
    EXPECT_FALSE(hit) << "config differing in '" << field
                      << "' collided with the base cache entry";
    EXPECT_EQ(engine.cache_misses(), ++expected_misses);
    // The same mutated deployment must now be served from the cache (the
    // key is stable, not merely unequal).
    engine.GetOrCompile(model, cfg, mapping, &hit);
    EXPECT_TRUE(hit) << "re-lookup of '" << field << "' mutation missed";
  }
  EXPECT_EQ(engine.cache_size(), 1u + mutations.size());
}

TEST(HostItemsPerSecondTest, SubTickWallTimeFallsBackToOneClockTick) {
  // A batch so fast the steady_clock delta rounds to zero must still report
  // a finite, positive rate — one clock tick is the conservative floor.
  constexpr double kTick =
      std::chrono::duration<double>(std::chrono::steady_clock::duration(1))
          .count();
  EXPECT_DOUBLE_EQ(HostItemsPerSecond(4, 0.0), 4.0 / kTick);
  EXPECT_GT(HostItemsPerSecond(1, 0.0), 0.0);
  // Normal path is unaffected; the empty batch stays at zero.
  EXPECT_DOUBLE_EQ(HostItemsPerSecond(10, 2.0), 5.0);
  EXPECT_EQ(HostItemsPerSecond(0, 0.0), 0.0);
  EXPECT_EQ(HostItemsPerSecond(0, 1.0), 0.0);
}

// N client threads hammering ONE engine with distinct models: with the
// engine-wide batch lock gone (runtime-pool checkout + per-call leases),
// every thread's results must still be bit-identical to a sequential run of
// its own model, and the shared program cache must account exactly one miss
// per distinct deployment no matter how the threads interleave.
TEST(InferenceEngineTest, ConcurrentCallersWithDistinctModelsStayIsolated) {
  const FpgaSpec spec = TestSpec();
  const AccelConfig cfg = TestConfig();

  struct Client {
    Model model;
    std::vector<LayerMapping> mapping;
    ModelWeightsQ weights;
    std::vector<Tensor<std::int16_t>> batch;
  };
  std::vector<Client> clients;
  {
    Client a{BuildTinyCnn(), {}, {}, {}};
    a.mapping =
        UniformMapping(a.model, ConvMode::kSpatial, Dataflow::kInputStationary);
    a.weights = SyntheticWeights(a.model, 7);
    a.batch = MakeBatch(a.model, 5, 100);
    clients.push_back(std::move(a));

    Client b{BuildTinyResidualBlock(), {}, {}, {}};
    b.mapping =
        UniformMapping(b.model, ConvMode::kSpatial, Dataflow::kInputStationary);
    b.weights = SyntheticWeights(b.model, 21);
    b.batch = MakeBatch(b.model, 5, 200);
    clients.push_back(std::move(b));

    Client c{BuildTinyCnn(), {}, {}, {}};
    c.mapping =
        UniformMapping(c.model, ConvMode::kWinograd, Dataflow::kInputStationary);
    c.weights = SyntheticWeights(c.model, 7);
    c.batch = MakeBatch(c.model, 5, 300);
    clients.push_back(std::move(c));
  }

  InferenceEngine engine(spec, 2);
  constexpr int kRounds = 3;
  std::vector<std::thread> threads;
  std::vector<std::vector<BatchReport>> reports(clients.size());
  for (std::size_t t = 0; t < clients.size(); ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const Client& cl = clients[t];
        reports[t].push_back(engine.ExecuteBatch(cl.model, cfg, cl.mapping,
                                                 cl.weights, cl.batch));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // One miss per distinct deployment; every other lookup hit the cache.
  EXPECT_EQ(engine.cache_misses(), static_cast<std::int64_t>(clients.size()));
  EXPECT_EQ(engine.cache_size(), clients.size());
  EXPECT_EQ(engine.cache_hits(),
            static_cast<std::int64_t>(clients.size() * kRounds) -
                engine.cache_misses());

  // Each client's outputs match a private sequential run of its model.
  for (std::size_t t = 0; t < clients.size(); ++t) {
    const Client& cl = clients[t];
    const Compiler compiler(cfg, spec);
    const CompiledModel cm = compiler.Compile(cl.model, cl.mapping);
    Runtime runtime(cfg, spec);
    std::vector<RunReport> seq;
    for (const auto& input : cl.batch) {
      seq.push_back(runtime.Execute(cl.model, cm, cl.weights, input));
    }
    for (int r = 0; r < kRounds; ++r) {
      ASSERT_EQ(reports[t][static_cast<std::size_t>(r)].items.size(),
                cl.batch.size());
      for (std::size_t i = 0; i < cl.batch.size(); ++i) {
        const RunReport& item =
            reports[t][static_cast<std::size_t>(r)].items[i];
        EXPECT_EQ(item.output, seq[i].output)
            << "client " << t << " round " << r << " item " << i;
        EXPECT_EQ(item.stats.total_cycles, seq[i].stats.total_cycles)
            << "client " << t << " round " << r << " item " << i;
      }
    }
  }
}

TEST(RuntimePoolTest, CheckoutReusesIdleRuntimesPerConfig) {
  RuntimePool pool(TestSpec());
  const AccelConfig base = TestConfig();
  AccelConfig other = base;
  other.pt = 6;

  {
    RuntimePool::Lease a = pool.Checkout(base);
    RuntimePool::Lease b = pool.Checkout(base);
    RuntimePool::Lease c = pool.Checkout(other);
    EXPECT_EQ(pool.built_count(), 3u);
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 3u) << "leases return runtimes on destruction";

  {
    RuntimePool::Lease a = pool.Checkout(base);
    RuntimePool::Lease b = pool.Checkout(other);
    EXPECT_EQ(pool.built_count(), 3u) << "idle runtimes are reused, not rebuilt";
    EXPECT_EQ(pool.idle_count(), 1u);
  }
  EXPECT_EQ(pool.idle_count(), 3u);
}

TEST(RuntimePoolTest, LeaseReuseUnderConcurrentServerChurn) {
  // Two servers share one engine — and therefore one RuntimePool. Churning
  // bursts through both concurrently must stay bit-identical to sequential
  // execution, and the pool must recycle idle Runtimes between drains:
  // constructions are bounded by peak concurrent checkouts (the four server
  // workers plus the golden run), never by the number of batches served.
  Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  auto mapping =
      UniformMapping(model, ConvMode::kSpatial, Dataflow::kInputStationary);
  ModelWeightsQ weights = SyntheticWeights(model, 7);
  InferenceEngine engine(TestSpec(), /*num_workers=*/2);

  constexpr int kItems = 24;
  const auto inputs = MakeBatch(model, kItems, 11);
  const BatchReport golden = engine.ExecuteBatch(
      model, cfg, mapping, weights, inputs, /*functional=*/true);

  ServerOptions opts;
  opts.num_workers = 2;
  opts.max_batch = 3;
  opts.max_queue_delay_seconds = 0;  // drain as fast as workers free up
  opts.mode = ExecMode::kFunctional;
  InferenceServer server_a(engine, opts);
  InferenceServer server_b(engine, opts);
  const ModelHandle ha = server_a.RegisterModel(model, cfg, mapping, weights);
  const ModelHandle hb = server_b.RegisterModel(model, cfg, mapping, weights);

  constexpr int kRounds = 6;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::future<ItemReport>> fa, fb;
    for (int i = 0; i < kItems; ++i) {
      fa.push_back(server_a.Submit(ha, inputs[static_cast<std::size_t>(i)]));
      fb.push_back(server_b.Submit(hb, inputs[static_cast<std::size_t>(i)]));
    }
    for (int i = 0; i < kItems; ++i) {
      ItemReport ra = fa[static_cast<std::size_t>(i)].get();
      ItemReport rb = fb[static_cast<std::size_t>(i)].get();
      ASSERT_EQ(ra.outcome, ServeOutcome::kOk);
      ASSERT_EQ(rb.outcome, ServeOutcome::kOk);
      const auto& want = golden.items[static_cast<std::size_t>(i)].output;
      EXPECT_EQ(ra.run.output, want)
          << "server A round " << round << " item " << i;
      EXPECT_EQ(rb.run.output, want)
          << "server B round " << round << " item " << i;
    }
  }
  server_a.Stop();
  server_b.Stop();

  const std::int64_t batches = server_a.stats(ha).batches +
                               server_b.stats(hb).batches;
  EXPECT_GE(batches, 2 * kRounds);
  // 2 workers per server + up to 2 for the golden ExecuteBatch; well under
  // one Runtime per batch if leases were not recycled.
  EXPECT_LE(engine.runtime_pool().built_count(), 6)
      << "pool rebuilt Runtimes instead of reusing idle leases across "
      << batches << " batches";
}

TEST(InferenceEngineTest, StructuralHashIgnoresNameButNotGeometry) {
  Model a("net_a", FmapShape{3, 8, 8});
  Model b("net_b", FmapShape{3, 8, 8});
  ConvLayer layer;
  layer.name = "c1";
  layer.in_channels = 3;
  layer.out_channels = 4;
  a.Append(layer);
  layer.name = "other_name";
  b.Append(layer);
  const std::vector<LayerMapping> mapping(1);
  EXPECT_EQ(ModelStructuralHash(a, mapping), ModelStructuralHash(b, mapping));

  Model c("net_c", FmapShape{3, 8, 8});
  layer.out_channels = 8;
  c.Append(layer);
  EXPECT_NE(ModelStructuralHash(a, mapping), ModelStructuralHash(c, mapping));

  std::vector<LayerMapping> wino(1);
  wino[0].mode = ConvMode::kWinograd;
  EXPECT_NE(ModelStructuralHash(a, mapping), ModelStructuralHash(a, wino));
}

}  // namespace
}  // namespace hdnn
