// The parallel, memoized, multi-objective DSE subsystem:
//   * thread-count determinism — Explore/ExploreFrontier are bit-identical
//     for 1, 4 and 8 workers (the merge is an indexed gather, not a race);
//   * Pareto properties — no frontier point dominates another, every point
//     fits its platform, and the frontier contains the legacy single-
//     objective winner on both paper platforms;
//   * memo-cache correctness — warm (cached) and cold results are
//     bit-identical, and the cache actually gets hits.
#include <gtest/gtest.h>

#include "dse/search.h"
#include "nn/builders.h"
#include "platform/fpga_spec.h"

namespace hdnn {
namespace {

void ExpectSameResult(const DseResult& a, const DseResult& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_EQ(a.estimated_cycles, b.estimated_cycles);  // bit-exact
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.power_watts, b.power_watts);
  EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
}

void ExpectSameFrontier(const DseFrontier& a, const DseFrontier& b) {
  ExpectSameResult(a.best, b.best);
  EXPECT_EQ(a.candidates_evaluated, b.candidates_evaluated);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const ParetoPoint& pa = a.points[i];
    const ParetoPoint& pb = b.points[i];
    EXPECT_EQ(pa.config, pb.config) << "point " << i;
    EXPECT_EQ(pa.mapping, pb.mapping) << "point " << i;
    EXPECT_EQ(pa.estimated_cycles, pb.estimated_cycles) << "point " << i;
    EXPECT_EQ(pa.objective, pb.objective) << "point " << i;
    EXPECT_EQ(pa.lut_utilization, pb.lut_utilization) << "point " << i;
    EXPECT_EQ(pa.dsp_utilization, pb.dsp_utilization) << "point " << i;
    EXPECT_EQ(pa.bram_utilization, pb.bram_utilization) << "point " << i;
    EXPECT_EQ(pa.power_watts, pb.power_watts) << "point " << i;
  }
}

TEST(DseParallelTest, ThreadCountDeterminism) {
  for (const auto* spec : {&Vu9pSpec(), &PynqZ1Spec()}) {
    const Model model = BuildVgg16ConvOnly();
    DseOptions opts;
    opts.num_threads = 1;
    // Fresh engine per worker count: no shared cache can mask a race.
    const DseFrontier serial = DseEngine(*spec).ExploreFrontier(model, opts);
    for (int threads : {4, 8}) {
      opts.num_threads = threads;
      const DseFrontier parallel =
          DseEngine(*spec).ExploreFrontier(model, opts);
      SCOPED_TRACE(::testing::Message()
                   << spec->name << " threads=" << threads);
      ExpectSameFrontier(serial, parallel);
    }
  }
}

TEST(DseParallelTest, ExploreMatchesFrontierBest) {
  for (int threads : {1, 4}) {
    DseOptions opts;
    opts.num_threads = threads;
    const DseEngine engine(Vu9pSpec());
    const DseResult best = engine.Explore(BuildTinyCnn(), opts);
    const DseFrontier frontier =
        engine.ExploreFrontier(BuildTinyCnn(), opts);
    ExpectSameResult(best, frontier.best);
  }
}

TEST(DseParallelTest, HardwareConcurrencyAutoSelection) {
  DseOptions opts;
  opts.num_threads = 0;  // hardware concurrency, whatever this host has
  const DseFrontier auto_threads =
      DseEngine(PynqZ1Spec()).ExploreFrontier(BuildTinyCnn(), opts);
  opts.num_threads = 1;
  const DseFrontier serial =
      DseEngine(PynqZ1Spec()).ExploreFrontier(BuildTinyCnn(), opts);
  ExpectSameFrontier(serial, auto_threads);
}

TEST(DseParallelTest, FrontierHasNoDominatedPoint) {
  for (const auto* spec : {&Vu9pSpec(), &PynqZ1Spec()}) {
    const DseFrontier f =
        DseEngine(*spec).ExploreFrontier(BuildVgg16ConvOnly());
    ASSERT_FALSE(f.points.empty()) << spec->name;
    for (std::size_t i = 0; i < f.points.size(); ++i) {
      for (std::size_t j = 0; j < f.points.size(); ++j) {
        if (i == j) continue;
        EXPECT_FALSE(Dominates(f.points[i], f.points[j]))
            << spec->name << ": point " << i << " ("
            << f.points[i].config.ToString() << ") dominates point " << j
            << " (" << f.points[j].config.ToString() << ")";
      }
    }
  }
}

TEST(DseParallelTest, FrontierPointsAreFeasibleAndSorted) {
  for (const auto* spec : {&Vu9pSpec(), &PynqZ1Spec()}) {
    const DseFrontier f =
        DseEngine(*spec).ExploreFrontier(BuildVgg16ConvOnly());
    for (std::size_t i = 0; i < f.points.size(); ++i) {
      const ParetoPoint& p = f.points[i];
      EXPECT_NO_THROW(p.config.Validate());
      EXPECT_TRUE(FitsDeviceLimits(p.implementation, *spec))
          << p.config.ToString();
      EXPECT_TRUE(FitsPerDie(p.implementation, p.config, *spec))
          << p.config.ToString();
      EXPECT_GT(p.power_watts, 0);
      if (i > 0) {
        EXPECT_GE(p.objective, f.points[i - 1].objective) << "sort order";
      }
    }
  }
}

TEST(DseParallelTest, FrontierContainsLegacyWinner) {
  // Acceptance: multi-objective search must not lose the best-throughput
  // design — the paper's published config stays on the frontier for both
  // evaluation platforms.
  for (const auto* spec : {&Vu9pSpec(), &PynqZ1Spec()}) {
    const DseEngine engine(*spec);
    const DseFrontier f = engine.ExploreFrontier(BuildVgg16ConvOnly());
    bool found = false;
    for (const ParetoPoint& p : f.points) {
      if (p.config == f.best.config) {
        found = true;
        EXPECT_EQ(p.estimated_cycles, f.best.estimated_cycles);
        EXPECT_EQ(p.mapping, f.best.mapping);
      }
    }
    EXPECT_TRUE(found) << spec->name
                       << ": legacy winner missing from the frontier";
  }
}

TEST(DseParallelTest, MemoCacheWarmVsColdIdentical) {
  const Model model = BuildResNet18Style();
  DseEngine engine(Vu9pSpec());

  DseOptions memo_opts;
  memo_opts.use_memo = true;
  const DseFrontier cold = engine.ExploreFrontier(model, memo_opts);
  const auto stats_after_cold = engine.cache_stats();
  EXPECT_GT(engine.cache_entries(), 0u);
  // ResNet stages repeat layer geometries, so even a cold exploration hits.
  EXPECT_GT(stats_after_cold.hits, 0);

  const DseFrontier warm = engine.ExploreFrontier(model, memo_opts);
  ExpectSameFrontier(cold, warm);

  // A fresh engine with memoization disabled recomputes everything and must
  // land on exactly the same bits.
  DseOptions no_memo;
  no_memo.use_memo = false;
  DseEngine cold_engine(Vu9pSpec());
  const DseFrontier recomputed = cold_engine.ExploreFrontier(model, no_memo);
  ExpectSameFrontier(cold, recomputed);
  EXPECT_EQ(cold_engine.cache_entries(), 0u);
}

TEST(DseParallelTest, MemoCacheSharesLayersAcrossModels) {
  // vgg16_full extends vgg16_conv: exploring the conv-only body first must
  // make the full model's conv layers pure cache hits.
  DseEngine engine(Vu9pSpec());
  engine.ExploreFrontier(BuildVgg16ConvOnly());
  const auto before = engine.cache_stats();
  const DseFrontier full = engine.ExploreFrontier(BuildVgg16());
  const auto after = engine.cache_stats();
  EXPECT_GT(after.hits, before.hits);

  // And the shared-cache result matches a dedicated engine's.
  const DseFrontier fresh = DseEngine(Vu9pSpec()).ExploreFrontier(BuildVgg16());
  ExpectSameFrontier(fresh, full);
}

TEST(DseParallelTest, ResNetStyleExploresOnBothPlatforms) {
  // The new workload (1x1/3x3/7x7 kernels, stride-2 downsampling) must be
  // schedulable end-to-end on both paper platforms, with the stride-2
  // layers mapped to Spatial mode (Winograd requires stride 1).
  const Model model = BuildResNet18Style();
  for (const auto* spec : {&Vu9pSpec(), &PynqZ1Spec()}) {
    const DseResult r = DseEngine(*spec).Explore(model);
    ASSERT_EQ(static_cast<int>(r.mapping.size()), model.num_layers());
    for (int i = 0; i < model.num_layers(); ++i) {
      if (model.layer(i).stride > 1) {
        EXPECT_EQ(r.mapping[static_cast<std::size_t>(i)].mode,
                  ConvMode::kSpatial)
            << spec->name << " layer " << model.layer(i).name;
      }
    }
  }
}

}  // namespace
}  // namespace hdnn
