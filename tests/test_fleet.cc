#include "fleet/fleet.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <set>
#include <vector>

#include "fleet/portfolio.h"
#include "fleet/router.h"
#include "nn/builders.h"
#include "runtime/engine.h"
#include "tests/testing_util.h"

namespace hdnn {
namespace {

using testing::MakeInput;
using testing::TestConfig;
using testing::TestSpec;

// Hand-built candidate for planner/router/sim tests: the planner only reads
// spec, config.ni, power and the modeled capacity vectors, so no DSE run is
// needed to exercise its decisions.
BoardCandidate MakeCandidate(const std::string& name, int ni,
                             double power_watts,
                             std::vector<double> item_seconds) {
  BoardCandidate cand;
  cand.spec = TestSpec();
  cand.spec.name = name;
  cand.config = TestConfig();
  cand.config.ni = ni;
  cand.power_watts = power_watts;
  cand.item_seconds = std::move(item_seconds);
  for (double s : cand.item_seconds)
    cand.board_qps.push_back(static_cast<double>(ni) / s);
  cand.mappings.resize(cand.item_seconds.size());
  return cand;
}

LatencyClass MakeClass(const std::string& name, int model, double qps,
                       double deadline = kNoDeadline) {
  return LatencyClass{name, model, qps, deadline};
}

// --- router ---

TEST(RouterTest, FullScanPicksLeastLoadedTiesToLowestShard) {
  RouterOptions opts;
  opts.choices = 0;  // scan every feasible shard
  Router router(4, opts);
  const std::vector<bool> all(4, true);
  EXPECT_EQ(router.Route({3.0, 1.0, 2.0, 1.5}, all), 1);
  EXPECT_EQ(router.Route({2.0, 1.0, 1.0, 1.0}, all), 1) << "tie -> lowest";
  EXPECT_EQ(router.Route({0.0, 0.0, 0.0, 0.0}, all), 0);
  EXPECT_EQ(router.Route({1.0, 1.0, 1.0, 1.0}, {false, false, true, true}),
            2)
      << "infeasible shards never win";
  EXPECT_EQ(router.Route({1.0, 1.0, 1.0, 1.0}, std::vector<bool>(4, false)),
            -1);
  EXPECT_EQ(router.decisions(), 5);
}

TEST(RouterTest, PowerOfTwoChoicesStaysInsideFeasibleSet) {
  Router router(6, RouterOptions{/*seed=*/3, /*choices=*/2});
  const std::vector<double> load(6, 1.0);
  std::vector<bool> feasible(6, false);
  feasible[1] = feasible[3] = feasible[4] = true;
  for (int i = 0; i < 200; ++i) {
    const int s = router.Route(load, feasible);
    EXPECT_TRUE(s == 1 || s == 3 || s == 4) << "decision " << i;
  }
}

TEST(RouterTest, DecisionIsPureFunctionOfSeedAndIndex) {
  // Decision k draws from Prng(seed).Fork(k): the sampled pair depends only
  // on (seed, k, load, feasible), never on what earlier decisions consumed.
  const std::vector<double> load{5.0, 1.0, 4.0, 2.0, 3.0};
  const std::vector<bool> all(5, true);
  const std::vector<bool> none(5, false);

  Router a(5, RouterOptions{/*seed=*/7, /*choices=*/2});
  Router b(5, RouterOptions{/*seed=*/7, /*choices=*/2});
  std::vector<int> seq_a, seq_b;
  for (int i = 0; i < 64; ++i) seq_a.push_back(a.Route(load, all));
  for (int i = 0; i < 64; ++i) seq_b.push_back(b.Route(load, all));
  EXPECT_EQ(seq_a, seq_b);

  // An unroutable call consumes its decision slot, keeping later decisions
  // aligned with the replay.
  Router c(5, RouterOptions{/*seed=*/7, /*choices=*/2});
  EXPECT_EQ(c.Route(load, none), -1);
  EXPECT_EQ(c.decisions(), 1);
  for (int i = 1; i < 64; ++i)
    EXPECT_EQ(c.Route(load, all), seq_a[static_cast<std::size_t>(i)])
        << "decision " << i;

  // A different seed must not replay the same decision vector.
  Router d(5, RouterOptions{/*seed=*/8, /*choices=*/2});
  std::vector<int> seq_d;
  for (int i = 0; i < 64; ++i) seq_d.push_back(d.Route(load, all));
  EXPECT_NE(seq_a, seq_d);
}

// --- poisson trace ---

TEST(FleetTraceTest, PoissonTraceIsDeterministicAndTimeOrdered) {
  const std::vector<LatencyClass> classes{
      MakeClass("a", 0, 5000.0, 0.002), MakeClass("b", 0, 2000.0)};
  const auto t1 = MakePoissonTrace(classes, 0.05, 11);
  const auto t2 = MakePoissonTrace(classes, 0.05, 11);
  ASSERT_EQ(t1.size(), t2.size());
  ASSERT_FALSE(t1.empty());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].at_seconds, t2[i].at_seconds);
    EXPECT_EQ(t1[i].class_index, t2[i].class_index);
    if (i > 0) {
      EXPECT_GE(t1[i].at_seconds, t1[i - 1].at_seconds);
    }
  }
  const auto t3 = MakePoissonTrace(classes, 0.05, 12);
  ASSERT_FALSE(t3.empty());
  EXPECT_NE(t3[0].at_seconds, t1[0].at_seconds)
      << "different seed should give a different trace";
}

TEST(FleetTraceTest, ClassStreamsAreIndependentOfOtherClasses) {
  // Class c draws from Fork(c): adding another class must not perturb the
  // first class's arrival times.
  const LatencyClass a = MakeClass("a", 0, 4000.0);
  const LatencyClass b = MakeClass("b", 1, 9000.0);
  const auto solo = MakePoissonTrace({a}, 0.05, 5);
  const auto both = MakePoissonTrace({a, b}, 0.05, 5);
  std::vector<double> solo_times, both_class0_times;
  for (const auto& e : solo) solo_times.push_back(e.at_seconds);
  for (const auto& e : both)
    if (e.class_index == 0) both_class0_times.push_back(e.at_seconds);
  EXPECT_EQ(solo_times, both_class0_times);
}

// --- portfolio planning ---

TEST(PortfolioTest, ClassFeasibleComparesItemLatencyToDeadline) {
  const BoardCandidate cand = MakeCandidate("x", 2, 10.0, {0.010, 0.002});
  EXPECT_TRUE(ClassFeasible(cand, MakeClass("loose", 0, 1.0, 0.020)));
  EXPECT_TRUE(ClassFeasible(cand, MakeClass("exact", 0, 1.0, 0.010)));
  EXPECT_FALSE(ClassFeasible(cand, MakeClass("tight", 0, 1.0, 0.005)));
  EXPECT_TRUE(ClassFeasible(cand, MakeClass("none", 1, 1.0)));
}

TEST(PortfolioTest, EvaluatePortfolioFillsStrictestClassFirst) {
  // Board 0 is the only one fast enough for the tight class; the evaluator
  // must allocate its capacity to the tight class before the loose class
  // can claim it.
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("fast", 1, 10.0, {0.001}));  // 1000 qps
  cands.push_back(MakeCandidate("slow", 1, 5.0, {0.004}));   // 250 qps
  const std::vector<LatencyClass> classes{
      MakeClass("loose", 0, 2000.0, 1.0),
      MakeClass("tight", 0, 800.0, 0.002),
  };
  PortfolioOptions opts;
  opts.power_budget_watts = 100.0;
  opts.capacity_derate = 1.0;

  const PortfolioPlan plan =
      EvaluatePortfolio(cands, {1, 0}, classes, opts);
  ASSERT_EQ(plan.boards, (std::vector<int>{0, 1})) << "canonicalized";
  EXPECT_DOUBLE_EQ(plan.class_qps[1], 800.0) << "tight served fully";
  // Remaining fast capacity (200) plus all slow capacity (250) go loose.
  EXPECT_DOUBLE_EQ(plan.class_qps[0], 450.0);
  EXPECT_DOUBLE_EQ(plan.planned_qps, 1250.0);
  EXPECT_DOUBLE_EQ(plan.power_watts, 15.0);
  EXPECT_DOUBLE_EQ(plan.shard_class_qps[0][1], 800.0);
  EXPECT_DOUBLE_EQ(plan.shard_class_qps[0][0], 200.0);
  EXPECT_DOUBLE_EQ(plan.shard_class_qps[1][0], 250.0);
  EXPECT_DOUBLE_EQ(plan.shard_class_qps[1][1], 0.0);
}

TEST(PortfolioTest, CapacityDerateScalesPlannedCapacity) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));  // 1000 qps raw
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 5000.0)};
  PortfolioOptions opts;
  opts.power_budget_watts = 10.0;
  opts.capacity_derate = 0.85;
  const PortfolioPlan plan = EvaluatePortfolio(cands, {0}, classes, opts);
  EXPECT_DOUBLE_EQ(plan.planned_qps, 850.0);
}

TEST(PortfolioTest, PlanPortfolioRespectsBudgetAndIsDeterministic) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("big", 4, 40.0, {0.001}));    // 100 qps/W
  cands.push_back(MakeCandidate("mid", 2, 10.0, {0.001}));    // 200 qps/W
  cands.push_back(MakeCandidate("small", 1, 3.0, {0.002}));   // 167 qps/W
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 1e9)};
  PortfolioOptions opts;
  opts.power_budget_watts = 27.0;
  opts.capacity_derate = 1.0;

  const PortfolioPlan p1 = PlanPortfolio(cands, classes, opts);
  const PortfolioPlan p2 = PlanPortfolio(cands, classes, opts);
  EXPECT_EQ(p1.boards, p2.boards);
  EXPECT_EQ(p1.planned_qps, p2.planned_qps);
  EXPECT_LE(p1.power_watts, opts.power_budget_watts + 1e-9);
  // Unbounded demand, mid dominates on qps/W: 2x mid (20 W) + small (3 W)
  // fills 23 of 27 W for 2000 + 500 qps; any third mid would bust the
  // budget. Another small fits the 4 W residue.
  EXPECT_EQ(p1.boards, (std::vector<int>{1, 1, 2, 2}));
  EXPECT_DOUBLE_EQ(p1.planned_qps, 5000.0);

  PortfolioOptions capped = opts;
  capped.max_boards = 2;
  EXPECT_LE(PlanPortfolio(cands, classes, capped).boards.size(), 2u);
}

TEST(PortfolioTest, LocalSwapNeverHurtsGreedy) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 2, 12.0, {0.001, 0.004}));
  cands.push_back(MakeCandidate("b", 1, 5.0, {0.002, 0.001}));
  cands.push_back(MakeCandidate("c", 1, 2.0, {0.010, 0.008}));
  const std::vector<LatencyClass> classes{
      MakeClass("x", 0, 3000.0, 0.005), MakeClass("y", 1, 2000.0, 0.006)};
  PortfolioOptions no_swap;
  no_swap.power_budget_watts = 25.0;
  no_swap.local_swap_passes = 0;
  PortfolioOptions swap = no_swap;
  swap.local_swap_passes = 2;
  EXPECT_GE(PlanPortfolio(cands, classes, swap).planned_qps,
            PlanPortfolio(cands, classes, no_swap).planned_qps);
}

TEST(PortfolioTest, HomogeneousReplicatesAndStrandsTheResidue) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 1e9)};
  PortfolioOptions opts;
  opts.power_budget_watts = 35.0;
  opts.capacity_derate = 1.0;
  const PortfolioPlan plan = PlanHomogeneous(cands, 0, classes, opts);
  EXPECT_EQ(plan.boards, (std::vector<int>{0, 0, 0}));
  EXPECT_DOUBLE_EQ(plan.power_watts, 30.0) << "5 W residue stranded";
  EXPECT_DOUBLE_EQ(plan.planned_qps, 3000.0);
}

TEST(PortfolioTest, NaiveBestCandidateNeedsAllClassesAndBreaksTiesByPower) {
  std::vector<BoardCandidate> cands;
  // Highest throughput but too slow for the tight class.
  cands.push_back(MakeCandidate("fat", 8, 40.0, {0.001}));
  cands.push_back(MakeCandidate("ok_hot", 2, 20.0, {0.001}));
  cands.push_back(MakeCandidate("ok_cool", 2, 10.0, {0.001}));
  cands[0].item_seconds[0] = 0.004;
  cands[0].board_qps[0] = 8 / 0.004;
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 1000.0, 0.002)};
  // fat is infeasible; ok_hot and ok_cool tie on throughput -> lower power.
  EXPECT_EQ(NaiveBestCandidate(cands, classes), 2);
  const std::vector<LatencyClass> impossible{MakeClass("c", 0, 1.0, 1e-9)};
  EXPECT_THROW(NaiveBestCandidate(cands, impossible), InvalidArgument);
}

// --- virtual-time fleet simulation ---

TEST(FleetSimTest, SingleShardTimeoutAndSizeTriggersMatchHandComputation) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.010}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};
  FleetOptions opts;
  opts.max_batch = 2;
  opts.max_queue_delay_seconds = 0.005;

  // Lone arrival: dispatches on the timeout trigger at t = 0.005 and
  // finishes at 0.015.
  {
    const auto res = SimulateFleet(cands, {0}, classes,
                                   {cands[0].item_seconds},
                                   {{0.0, 0}}, opts);
    ASSERT_EQ(res.decisions, (std::vector<int>{0}));
    EXPECT_EQ(res.classes[0].ok, 1);
    EXPECT_DOUBLE_EQ(res.classes[0].p50_ms, 15.0);
    EXPECT_DOUBLE_EQ(res.horizon_seconds, 0.015);
    EXPECT_EQ(res.shards[0].batches, 1);
  }

  // Two arrivals inside the delay window: the size trigger fires at the
  // second arrival (t = 0.001); items finish back-to-back at 0.011/0.021.
  {
    const auto res = SimulateFleet(cands, {0}, classes,
                                   {cands[0].item_seconds},
                                   {{0.0, 0}, {0.001, 0}}, opts);
    EXPECT_EQ(res.classes[0].ok, 2);
    EXPECT_EQ(res.shards[0].batches, 1);
    EXPECT_DOUBLE_EQ(res.horizon_seconds, 0.021);
    EXPECT_DOUBLE_EQ(res.classes[0].p50_ms, 11.0);   // first item
    EXPECT_DOUBLE_EQ(res.classes[0].p99_ms, 20.0);   // second item
    EXPECT_DOUBLE_EQ(res.shards[0].busy_seconds, 0.020);
    EXPECT_NEAR(res.shards[0].utilization, 0.020 / 0.021, 1e-12);
  }
}

TEST(FleetSimTest, InfeasibleEverywhereIsUnroutable) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("slow", 1, 5.0, {0.050}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0, 0.001)};
  const auto res = SimulateFleet(cands, {0, 0}, classes,
                                 {cands[0].item_seconds},
                                 {{0.0, 0}, {0.01, 0}}, FleetOptions{});
  EXPECT_EQ(res.decisions, (std::vector<int>{-1, -1}));
  EXPECT_EQ(res.classes[0].unroutable, 2);
  EXPECT_EQ(res.classes[0].ok, 0);
}

TEST(FleetSimTest, RerunsAreBitIdentical) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("big", 2, 20.0, {0.0005, 0.0002}));
  cands.push_back(MakeCandidate("small", 1, 4.0, {0.002, 0.0008}));
  const std::vector<LatencyClass> classes{
      MakeClass("tight", 0, 3000.0, 0.004),
      MakeClass("loose", 1, 4000.0, 0.020)};
  const std::vector<std::vector<double>> dev{cands[0].item_seconds,
                                             cands[1].item_seconds};
  FleetOptions opts;
  opts.max_batch = 4;
  opts.max_queue_delay_seconds = 0.001;
  opts.class_weights = {2.0, 1.0};
  const auto trace = MakePoissonTrace(classes, 0.25, 99);
  ASSERT_GT(trace.size(), 500u);

  const auto a = SimulateFleet(cands, {0, 0, 1}, classes, dev, trace, opts);
  const auto b = SimulateFleet(cands, {0, 0, 1}, classes, dev, trace, opts);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.horizon_seconds, b.horizon_seconds);
  EXPECT_EQ(a.total_ok_qps, b.total_ok_qps);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    EXPECT_EQ(a.classes[c].ok, b.classes[c].ok);
    EXPECT_EQ(a.classes[c].rejected, b.classes[c].rejected);
    EXPECT_EQ(a.classes[c].expired, b.classes[c].expired);
    EXPECT_EQ(a.classes[c].p99_ms, b.classes[c].p99_ms);
  }
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].items, b.shards[s].items);
    EXPECT_EQ(a.shards[s].busy_seconds, b.shards[s].busy_seconds);
  }
  // Conservation: every submitted request is accounted for exactly once.
  for (std::size_t c = 0; c < classes.size(); ++c) {
    const auto& cs = a.classes[c];
    EXPECT_EQ(cs.submitted,
              cs.ok + cs.rejected + cs.expired + cs.unroutable)
        << "class " << c;
  }
  // Both shards of the big board see traffic (the router spreads load).
  EXPECT_GT(a.shards[0].items, 0);
  EXPECT_GT(a.shards[1].items, 0);
}

// --- chaos: fault injection and self-healing (DESIGN.md Sec. 12) ---

TEST(RouterTest, RoutePairPrimaryMatchesRouteAndHedgeIsDistinct) {
  // RoutePair must never perturb primary routing: replay Route() decisions
  // against RoutePair() primaries from the same seed.
  const std::vector<double> load{5.0, 1.0, 4.0, 2.0, 3.0};
  const std::vector<bool> all(5, true);
  Router plain(5, RouterOptions{/*seed=*/21, /*choices=*/2});
  Router paired(5, RouterOptions{/*seed=*/21, /*choices=*/2});
  for (int i = 0; i < 128; ++i) {
    const int p = plain.Route(load, all);
    const RouteDecision rd = paired.RoutePair(load, all);
    ASSERT_EQ(rd.primary, p) << "decision " << i;
    if (rd.hedge >= 0) {
      EXPECT_NE(rd.hedge, rd.primary) << "decision " << i;
      EXPECT_GE(load[static_cast<std::size_t>(rd.hedge)],
                load[static_cast<std::size_t>(rd.primary)])
          << "hedge must be the second-least-loaded of the sample";
    }
  }
  // Full scan of two shards: the hedge is always the other shard.
  Router two(2, RouterOptions{/*seed=*/1, /*choices=*/0});
  const RouteDecision rd = two.RoutePair({1.0, 2.0}, {true, true});
  EXPECT_EQ(rd.primary, 0);
  EXPECT_EQ(rd.hedge, 1);
  // A single feasible shard has no backup.
  EXPECT_EQ(two.RoutePair({1.0, 2.0}, {true, false}).hedge, -1);
}

// The chaos event loop with an EMPTY plan must reproduce the legacy
// simulator bit for bit (fault hooks off = zero behavior change). Health
// wires are opened wide so detection cannot fire on this healthy workload.
TEST(FleetChaosSimTest, EmptyPlanIsBitIdenticalToLegacyPath) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("big", 2, 20.0, {0.0005, 0.0002}));
  cands.push_back(MakeCandidate("small", 1, 4.0, {0.002, 0.0008}));
  const std::vector<LatencyClass> classes{
      MakeClass("tight", 0, 3000.0, 0.004),
      MakeClass("loose", 1, 4000.0, 0.020)};
  const std::vector<std::vector<double>> dev{cands[0].item_seconds,
                                             cands[1].item_seconds};
  FleetOptions opts;
  opts.max_batch = 4;
  opts.max_queue_delay_seconds = 0.001;
  opts.class_weights = {2.0, 1.0};
  opts.health.heartbeat_timeout_seconds = 10.0;
  opts.health.down_after_seconds = 10.0;
  opts.health.max_consecutive_misses = 0;
  const auto trace = MakePoissonTrace(classes, 0.25, 99);

  const auto legacy =
      SimulateFleet(cands, {0, 0, 1}, classes, dev, trace, opts, nullptr);
  const FaultPlan empty(42);
  ASSERT_TRUE(empty.empty());
  const auto chaos =
      SimulateFleet(cands, {0, 0, 1}, classes, dev, trace, opts, &empty);

  EXPECT_EQ(chaos.decisions, legacy.decisions);
  EXPECT_EQ(chaos.horizon_seconds, legacy.horizon_seconds);
  EXPECT_EQ(chaos.total_ok_qps, legacy.total_ok_qps);
  EXPECT_EQ(chaos.energy_joules, legacy.energy_joules);
  EXPECT_EQ(chaos.goodput_qps, legacy.goodput_qps);
  for (std::size_t c = 0; c < classes.size(); ++c) {
    EXPECT_EQ(chaos.classes[c].ok, legacy.classes[c].ok) << "class " << c;
    EXPECT_EQ(chaos.classes[c].rejected, legacy.classes[c].rejected);
    EXPECT_EQ(chaos.classes[c].expired, legacy.classes[c].expired);
    EXPECT_EQ(chaos.classes[c].unroutable, legacy.classes[c].unroutable);
    EXPECT_EQ(chaos.classes[c].failed, legacy.classes[c].failed);
    EXPECT_EQ(chaos.classes[c].ok_tail, legacy.classes[c].ok_tail);
    EXPECT_EQ(chaos.classes[c].p50_ms, legacy.classes[c].p50_ms);
    EXPECT_EQ(chaos.classes[c].p99_ms, legacy.classes[c].p99_ms);
  }
  for (std::size_t s = 0; s < legacy.shards.size(); ++s) {
    EXPECT_EQ(chaos.shards[s].items, legacy.shards[s].items) << "shard " << s;
    EXPECT_EQ(chaos.shards[s].batches, legacy.shards[s].batches);
    EXPECT_EQ(chaos.shards[s].busy_seconds, legacy.shards[s].busy_seconds);
    EXPECT_EQ(chaos.shards[s].energy_joules, legacy.shards[s].energy_joules);
  }
  EXPECT_EQ(chaos.chaos.hedges, 0);
  EXPECT_EQ(chaos.chaos.retries, 0);
  EXPECT_EQ(chaos.chaos.shards_down, 0);
  EXPECT_EQ(chaos.chaos.health_transitions, 0);
}

TEST(FleetChaosSimTest, CrashIsDetectedRetriedAndReplanned) {
  // Two identical shards at ~50% load; shard 0 crashes mid-run. The
  // heartbeat tripwire must declare it down, queued/in-flight work must be
  // re-routed to the survivor, and the portfolio re-plan must keep the
  // (fully servable) class whole.
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));  // 1000 qps/shard
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 800.0)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.health.heartbeat_timeout_seconds = 0.004;
  opts.health.down_after_seconds = 0.004;
  const auto trace = MakePoissonTrace(classes, 0.2, 5);
  ASSERT_GT(trace.size(), 100u);

  FaultPlan plan(7);
  plan.AddCrash(0, 0.05);
  const auto res = SimulateFleet(cands, {0, 0}, classes,
                                 {cands[0].item_seconds}, trace, opts, &plan);

  const auto& cs = res.classes[0];
  EXPECT_EQ(cs.submitted, static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(cs.submitted,
            cs.ok + cs.rejected + cs.expired + cs.unroutable + cs.failed)
      << "conservation under faults";
  EXPECT_EQ(res.chaos.shards_down, 1);
  EXPECT_GE(res.chaos.first_down_seconds, 0.05) << "detection is not psychic";
  EXPECT_EQ(res.chaos.replans, 1);
  EXPECT_GT(res.chaos.retries, 0) << "lost work must be re-routed";
  EXPECT_EQ(res.chaos.degraded_shed, 0)
      << "survivor capacity (850 qps derated) covers the 800 qps class";
  EXPECT_EQ(cs.failed, 0) << "no deadline, so every retry eventually lands";
  EXPECT_EQ(cs.ok, cs.submitted);
  EXPECT_GT(res.chaos.health_transitions, 0);
  // The dead shard executes nothing after the crash: every post-crash item
  // lands on the survivor.
  EXPECT_GT(res.shards[1].items, res.shards[0].items);

  // Chaos runs replay bit-identically, faults included.
  const auto rerun = SimulateFleet(cands, {0, 0}, classes,
                                   {cands[0].item_seconds}, trace, opts,
                                   &plan);
  EXPECT_EQ(rerun.decisions, res.decisions);
  EXPECT_EQ(rerun.classes[0].ok, res.classes[0].ok);
  EXPECT_EQ(rerun.horizon_seconds, res.horizon_seconds);
  EXPECT_EQ(rerun.chaos.retries, res.chaos.retries);
  EXPECT_EQ(rerun.chaos.first_down_seconds, res.chaos.first_down_seconds);
}

TEST(FleetChaosSimTest, CorruptionIsCaughtByCrcAndServedWithoutIt) {
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.max_batch = 1;
  std::vector<FleetTraceArrival> trace;
  for (int i = 0; i < 6; ++i) trace.push_back({0.002 * i, 0});

  FaultPlan plan(3);
  plan.AddCorruption(0, 0.0, 3);

  // CRC on (default): the three corrupted results are rejected at
  // collection and re-executed; nothing corrupted reaches a client.
  {
    const auto res = SimulateFleet(cands, {0}, classes,
                                   {cands[0].item_seconds}, trace, opts,
                                   &plan);
    EXPECT_EQ(res.chaos.corrupted_detected, 3);
    EXPECT_EQ(res.chaos.corrupted_served, 0);
    EXPECT_EQ(res.chaos.retries, 3);
    EXPECT_EQ(res.classes[0].ok, 6);
    EXPECT_EQ(res.classes[0].failed, 0);
    EXPECT_EQ(res.goodput_qps, res.total_ok_qps);
  }
  // CRC off: the same three results are served silently — only the
  // corrupted_served counter (and the goodput gap) knows.
  {
    FleetOptions no_crc = opts;
    no_crc.crc_enabled = false;
    const auto res = SimulateFleet(cands, {0}, classes,
                                   {cands[0].item_seconds}, trace, no_crc,
                                   &plan);
    EXPECT_EQ(res.chaos.corrupted_detected, 0);
    EXPECT_EQ(res.chaos.corrupted_served, 3);
    EXPECT_EQ(res.chaos.retries, 0);
    EXPECT_EQ(res.classes[0].ok, 6);
    EXPECT_LT(res.goodput_qps, res.total_ok_qps)
        << "goodput must discount silently corrupted serves";
  }
}

TEST(FleetChaosSimTest, StallTripsSuspectThenRecoversWithoutReplan) {
  // Shard 0 stalls past the heartbeat: it must go suspect (masked), drain
  // its backlog when the stall lifts, and recover — no permanent loss, no
  // re-plan, nothing failed.
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.health.heartbeat_timeout_seconds = 0.01;
  opts.health.down_after_seconds = 0.2;  // far beyond the stall
  std::vector<FleetTraceArrival> trace;
  for (int i = 0; i < 20; ++i) trace.push_back({0.003 * i, 0});

  FaultPlan plan(9);
  plan.AddStall(0, 0.0, 0.05);
  const auto res = SimulateFleet(cands, {0, 0}, classes,
                                 {cands[0].item_seconds}, trace, opts, &plan);
  EXPECT_EQ(res.classes[0].ok, 20) << "every request survives the stall";
  EXPECT_EQ(res.classes[0].failed, 0);
  EXPECT_EQ(res.chaos.shards_down, 0);
  EXPECT_EQ(res.chaos.replans, 0);
  EXPECT_GE(res.chaos.health_transitions, 2)
      << "suspect on silence, healthy again on progress";
  EXPECT_GT(res.shards[0].items, 0) << "the stalled backlog still drains";
}

TEST(FleetChaosSimTest, SlowdownDeratesDevicePacing) {
  // One shard, one arrival inside a 4x derate window: the item takes
  // 4 x 0.001 s. A second arrival after the window runs at full speed.
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.max_batch = 1;
  opts.health.heartbeat_timeout_seconds = 10.0;
  opts.health.down_after_seconds = 10.0;
  opts.health.max_consecutive_misses = 0;

  FaultPlan plan(1);
  plan.AddSlowdown(0, 0.0, 0.01, 4.0);
  const auto res = SimulateFleet(cands, {0}, classes,
                                 {cands[0].item_seconds},
                                 {{0.0, 0}, {0.02, 0}}, opts, &plan);
  EXPECT_EQ(res.classes[0].ok, 2);
  EXPECT_DOUBLE_EQ(res.classes[0].p50_ms, 1.0) << "post-window item at speed";
  EXPECT_DOUBLE_EQ(res.classes[0].p99_ms, 4.0) << "derated item took 4x";
  EXPECT_DOUBLE_EQ(res.horizon_seconds, 0.021);
}

TEST(FleetChaosSimTest, HedgingDuplicatesNearDeadlineRequestsFirstWinWins) {
  // hedge_slack_fraction = 1 makes every request hedge-eligible; with a
  // full-scan router over two shards the backup always exists, so every
  // arrival runs twice and the duplicate is counted as waste — but each
  // request is served exactly once.
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0, 0.010)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.max_batch = 1;
  opts.router.choices = 0;
  opts.hedge_slack_fraction = 1.0;
  opts.health.heartbeat_timeout_seconds = 10.0;
  opts.health.down_after_seconds = 10.0;
  opts.health.max_consecutive_misses = 0;
  std::vector<FleetTraceArrival> trace;
  for (int i = 0; i < 10; ++i) trace.push_back({0.005 * i, 0});

  const auto res = SimulateFleet(cands, {0, 0}, classes,
                                 {cands[0].item_seconds}, trace, opts,
                                 nullptr);
  EXPECT_EQ(res.classes[0].ok, 10);
  EXPECT_EQ(res.chaos.hedges, 10);
  EXPECT_EQ(res.chaos.hedge_wasted, 10)
      << "both copies ran; exactly one settled the request";
  EXPECT_EQ(res.classes[0].submitted,
            res.classes[0].ok + res.classes[0].rejected +
                res.classes[0].expired + res.classes[0].unroutable +
                res.classes[0].failed);
}

TEST(FleetChaosSimTest, TotalLossWithDeadlinesFailsClosed) {
  // Every shard dies with work outstanding and the class deadline forbids
  // waiting: requests must settle as failed/expired — never hang, never
  // serve. Exercises the open-request conservation check at loop exit.
  std::vector<BoardCandidate> cands;
  cands.push_back(MakeCandidate("a", 1, 10.0, {0.001}));
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0, 0.02)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.health.heartbeat_timeout_seconds = 0.005;
  opts.health.down_after_seconds = 0.005;
  std::vector<FleetTraceArrival> trace;
  for (int i = 0; i < 8; ++i) trace.push_back({0.001 * i, 0});

  FaultPlan plan(4);
  plan.AddCrash(0, 0.0015);
  plan.AddCrash(1, 0.0015);
  const auto res = SimulateFleet(cands, {0, 0}, classes,
                                 {cands[0].item_seconds}, trace, opts, &plan);
  const auto& cs = res.classes[0];
  EXPECT_EQ(cs.submitted, 8);
  EXPECT_EQ(cs.submitted,
            cs.ok + cs.rejected + cs.expired + cs.unroutable + cs.failed);
  EXPECT_EQ(res.chaos.shards_down, 2);
  EXPECT_GT(cs.failed + cs.expired + cs.unroutable, 0);
  EXPECT_LT(cs.ok, 8) << "a fleet-wide crash cannot serve everything";
}

// --- live fleet ---

TEST(FleetLiveTest, FunctionalServingMatchesSequentialAndSharesEngines) {
  Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  std::vector<LayerMapping> mapping(
      static_cast<std::size_t>(model.num_layers()),
      LayerMapping{ConvMode::kSpatial, Dataflow::kInputStationary});
  ModelWeightsQ weights = SyntheticWeights(model, 7);

  BoardCandidate cand = MakeCandidate("test", 2, 10.0, {0.001});
  cand.config = cfg;
  cand.config.ni = 2;
  cand.mappings = {mapping};
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};

  FleetOptions opts;
  opts.max_batch = 4;
  opts.max_queue_delay_seconds = 0;
  Fleet fleet({cand}, {0, 0}, classes, {&model}, {&weights}, opts,
              ExecMode::kFunctional);
  ASSERT_EQ(fleet.num_shards(), 2);

  constexpr int kItems = 16;
  InferenceEngine golden_engine(TestSpec(), 1);
  std::vector<std::future<ItemReport>> futures;
  std::vector<Tensor<std::int16_t>> inputs;
  for (int i = 0; i < kItems; ++i) {
    inputs.push_back(
        MakeInput(model.InputOf(0), 100 + static_cast<std::uint64_t>(i)));
    futures.push_back(fleet.Submit(0, inputs.back()));
  }
  const BatchReport golden = golden_engine.ExecuteBatch(
      model, cand.config, mapping, weights, inputs, /*functional=*/true);
  for (int i = 0; i < kItems; ++i) {
    const ItemReport r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.outcome, ServeOutcome::kOk) << "item " << i;
    EXPECT_EQ(r.run.output, golden.items[static_cast<std::size_t>(i)].output)
        << "item " << i;
  }
  fleet.Stop();

  EXPECT_EQ(fleet.routed(), kItems);
  const ServerStats cs = fleet.class_stats(0);
  EXPECT_EQ(cs.submitted, kItems);
  EXPECT_EQ(cs.ok, kItems);
  const ServerStats s0 = fleet.shard_stats(0);
  const ServerStats s1 = fleet.shard_stats(1);
  EXPECT_EQ(s0.submitted + s1.submitted, kItems);
  // Both shards share one engine (and its program cache): the model
  // compiles once for shard 0 and cache-hits for shard 1.
  EXPECT_GE(fleet.engine("test").cache_hits(), 1);
}

TEST(FleetLiveTest, SubmitHedgedServesOnceAndMatchesSequential) {
  Model model = BuildTinyCnn();
  const AccelConfig cfg = TestConfig();
  std::vector<LayerMapping> mapping(
      static_cast<std::size_t>(model.num_layers()),
      LayerMapping{ConvMode::kSpatial, Dataflow::kInputStationary});
  ModelWeightsQ weights = SyntheticWeights(model, 7);
  BoardCandidate cand = MakeCandidate("test", 1, 10.0, {0.001});
  cand.config = cfg;
  cand.mappings = {mapping};
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.router.choices = 0;  // full scan: a backup shard always exists
  Fleet fleet({cand}, {0, 0}, classes, {&model}, {&weights}, opts,
              ExecMode::kFunctional);

  constexpr int kItems = 8;
  InferenceEngine golden_engine(TestSpec(), 1);
  std::vector<std::future<ItemReport>> futures;
  std::vector<Tensor<std::int16_t>> inputs;
  for (int i = 0; i < kItems; ++i) {
    inputs.push_back(
        MakeInput(model.InputOf(0), 300 + static_cast<std::uint64_t>(i)));
    futures.push_back(fleet.SubmitHedged(0, inputs.back()));
  }
  const BatchReport golden = golden_engine.ExecuteBatch(
      model, cand.config, mapping, weights, inputs, /*functional=*/true);
  for (int i = 0; i < kItems; ++i) {
    const ItemReport r = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(r.outcome, ServeOutcome::kOk) << "item " << i;
    EXPECT_EQ(r.run.output, golden.items[static_cast<std::size_t>(i)].output)
        << "hedged result must equal the sequential golden (purity)";
  }
  fleet.Stop();
  // Duplicates executed on the backup shard do not double-count serves seen
  // by clients: each future resolved exactly once with one report.
  EXPECT_GE(fleet.class_stats(0).submitted, kItems)
      << "hedge copies add submissions beyond the client's";
}

TEST(FleetLiveTest, ManualHealthMaskExcludesShardFromRouting) {
  Model model = BuildTinyCnn();
  std::vector<LayerMapping> mapping(
      static_cast<std::size_t>(model.num_layers()),
      LayerMapping{ConvMode::kSpatial, Dataflow::kInputStationary});
  ModelWeightsQ weights = SyntheticWeights(model, 7);
  BoardCandidate cand = MakeCandidate("test", 1, 10.0, {0.001});
  cand.config = TestConfig();
  cand.mappings = {mapping};
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  Fleet fleet({cand}, {0, 0}, classes, {&model}, {&weights}, opts,
              ExecMode::kFunctional);
  ASSERT_TRUE(fleet.shard_routable(0));
  fleet.SetShardHealth(0, false);
  EXPECT_FALSE(fleet.shard_routable(0));

  // With shard 0 masked, every submit lands on shard 1.
  std::vector<std::future<ItemReport>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(fleet.Submit(
        0, MakeInput(model.InputOf(0), 400 + static_cast<std::uint64_t>(i))));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().outcome, ServeOutcome::kOk);
  EXPECT_EQ(fleet.shard_stats(0).submitted, 0);
  EXPECT_EQ(fleet.shard_stats(1).submitted, 4);

  // Masking everything fails fast instead of hanging.
  fleet.SetShardHealth(1, false);
  EXPECT_EQ(fleet.Submit(0, MakeInput(model.InputOf(0), 500)).get().outcome,
            ServeOutcome::kRejected);
  fleet.SetShardHealth(0, true);
  EXPECT_TRUE(fleet.shard_routable(0));
  EXPECT_EQ(fleet.Submit(0, MakeInput(model.InputOf(0), 501)).get().outcome,
            ServeOutcome::kOk);
  fleet.Stop();
}

TEST(FleetLiveTest, StopResolvesOutstandingHedgedFutures) {
  // Regression: every future handed out — including hedged pairs still
  // queued or in flight — must resolve with a terminal status once Stop()
  // returns. A hang here is the bug this test exists to catch.
  Model model = BuildTinyCnn();
  std::vector<LayerMapping> mapping(
      static_cast<std::size_t>(model.num_layers()),
      LayerMapping{ConvMode::kSpatial, Dataflow::kInputStationary});
  ModelWeightsQ weights = SyntheticWeights(model, 7);
  BoardCandidate cand = MakeCandidate("test", 1, 10.0, {0.001});
  cand.config = TestConfig();
  cand.mappings = {mapping};
  const std::vector<LatencyClass> classes{MakeClass("c", 0, 100.0)};
  FleetOptions opts;
  opts.max_queue_delay_seconds = 0;
  opts.router.choices = 0;
  Fleet fleet({cand}, {0, 0}, classes, {&model}, {&weights}, opts,
              ExecMode::kFunctional);

  std::vector<std::future<ItemReport>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(fleet.SubmitHedged(
        0, MakeInput(model.InputOf(0), 600 + static_cast<std::uint64_t>(i))));
  }
  fleet.Stop();  // drains queues and joins workers
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "future " << i << " did not resolve after Stop()";
    const ItemReport r = futures[i].get();
    EXPECT_TRUE(r.outcome == ServeOutcome::kOk ||
                r.outcome == ServeOutcome::kRejected ||
                r.outcome == ServeOutcome::kExpired ||
                r.outcome == ServeOutcome::kFailed)
        << "future " << i << " resolved without a terminal status";
  }
}

}  // namespace
}  // namespace hdnn
