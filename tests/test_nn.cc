#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/builders.h"
#include "nn/model.h"

namespace hdnn {
namespace {

TEST(ConvLayerTest, OutputGeometrySamePad) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 3;
  l.out_channels = 8;
  const FmapShape out = l.ConvOutput(FmapShape{3, 32, 32});
  EXPECT_EQ(out.channels, 8);
  EXPECT_EQ(out.height, 32);
  EXPECT_EQ(out.width, 32);
}

TEST(ConvLayerTest, OutputGeometryStrideNoPad) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 3;
  l.out_channels = 8;
  l.kernel_h = l.kernel_w = 11;
  l.stride = 4;
  l.pad = 0;
  const FmapShape out = l.ConvOutput(FmapShape{3, 227, 227});
  EXPECT_EQ(out.height, 55);
  EXPECT_EQ(out.width, 55);
}

TEST(ConvLayerTest, PoolHalvesOutput) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 4;
  l.out_channels = 4;
  l.pool = 2;
  const FmapShape out = l.Output(FmapShape{4, 16, 16});
  EXPECT_EQ(out.height, 8);
  EXPECT_EQ(out.width, 8);
}

TEST(ConvLayerTest, PoolMustTile) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 4;
  l.out_channels = 4;
  l.pool = 3;
  EXPECT_THROW(l.Output(FmapShape{4, 16, 16}), InvalidArgument);
}

TEST(ConvLayerTest, MacCount) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 2;
  l.out_channels = 4;
  l.pad = 1;
  // 4 * 2 * 3 * 3 * 8 * 8 = 4608 MACs
  EXPECT_EQ(l.Macs(FmapShape{2, 8, 8}), 4608);
  EXPECT_EQ(l.Ops(FmapShape{2, 8, 8}), 9216);
}

TEST(ModelTest, AppendValidatesChannelChain) {
  Model m("m", FmapShape{3, 8, 8});
  ConvLayer l;
  l.name = "bad";
  l.in_channels = 4;  // mismatch with 3
  l.out_channels = 8;
  EXPECT_THROW(m.Append(l), InvalidArgument);
}

TEST(ModelTest, ShapeInferenceChains) {
  const Model m = BuildTinyCnn();
  EXPECT_EQ(m.InputOf(0).height, 32);
  EXPECT_EQ(m.OutputOf(0).height, 16);  // pool2
  EXPECT_EQ(m.OutputOf(2).channels, 64);
  EXPECT_EQ(m.OutputOf(2).height, 4);
}

TEST(ModelTest, FcFlattensInput) {
  const Model m = BuildTinyCnn();
  const int fc = m.num_layers() - 1;
  EXPECT_TRUE(m.layer(fc).is_fc);
  EXPECT_EQ(m.InputOf(fc).channels, 64 * 4 * 4);
  EXPECT_EQ(m.InputOf(fc).height, 1);
  EXPECT_EQ(m.OutputShape().channels, 10);
}

TEST(ModelTest, Vgg16Structure) {
  const Model m = BuildVgg16();
  EXPECT_EQ(m.num_layers(), 16);  // 13 conv + 3 fc
  EXPECT_EQ(m.OutputShape().channels, 1000);
  // conv5_3 output after pool: 512 x 7 x 7
  EXPECT_EQ(m.OutputOf(12).channels, 512);
  EXPECT_EQ(m.OutputOf(12).height, 7);
}

TEST(ModelTest, Vgg16OpCountMatchesLiterature) {
  // VGG16 is ~30.9 GOP end to end (~30.7 GOP conv-only), the number used
  // for all Table 4 GOPS calculations.
  const Model full = BuildVgg16();
  const Model conv = BuildVgg16ConvOnly();
  EXPECT_NEAR(static_cast<double>(full.TotalOps()), 30.94e9, 0.1e9);
  EXPECT_NEAR(static_cast<double>(conv.TotalOps()), 30.69e9, 0.1e9);
}

TEST(ModelTest, AlexNetStyleBuilds) {
  const Model m = BuildAlexNetStyle();
  EXPECT_GT(m.TotalOps(), 0);
  EXPECT_EQ(m.layer(0).kernel_h, 11);
  EXPECT_EQ(m.layer(1).kernel_h, 5);
  EXPECT_EQ(m.OutputShape().channels, 256);
}

TEST(ModelTest, SummaryMentionsEveryLayer) {
  const Model m = BuildTinyCnn();
  const std::string s = m.Summary();
  for (int i = 0; i < m.num_layers(); ++i) {
    EXPECT_NE(s.find(m.layer(i).name), std::string::npos) << m.layer(i).name;
  }
}

TEST(ModelTest, SingleConvBuilderSamePadDefault) {
  const Model m = BuildSingleConv(3, 8, 16, 16, 5);
  EXPECT_EQ(m.layer(0).pad, 2);
  EXPECT_EQ(m.OutputShape().height, 16);
}

TEST(ModelTest, EmptyModelOutputThrows) {
  Model m("empty", FmapShape{1, 1, 1});
  EXPECT_THROW(m.OutputShape(), InvalidArgument);
}

}  // namespace
}  // namespace hdnn
