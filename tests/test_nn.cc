#include <gtest/gtest.h>

#include "common/check.h"
#include "nn/builders.h"
#include "nn/model.h"

namespace hdnn {
namespace {

TEST(ConvLayerTest, OutputGeometrySamePad) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 3;
  l.out_channels = 8;
  const FmapShape out = l.ConvOutput(FmapShape{3, 32, 32});
  EXPECT_EQ(out.channels, 8);
  EXPECT_EQ(out.height, 32);
  EXPECT_EQ(out.width, 32);
}

TEST(ConvLayerTest, OutputGeometryStrideNoPad) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 3;
  l.out_channels = 8;
  l.kernel_h = l.kernel_w = 11;
  l.stride = 4;
  l.pad = 0;
  const FmapShape out = l.ConvOutput(FmapShape{3, 227, 227});
  EXPECT_EQ(out.height, 55);
  EXPECT_EQ(out.width, 55);
}

TEST(ConvLayerTest, PoolHalvesOutput) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 4;
  l.out_channels = 4;
  l.pool = 2;
  const FmapShape out = l.Output(FmapShape{4, 16, 16});
  EXPECT_EQ(out.height, 8);
  EXPECT_EQ(out.width, 8);
}

TEST(ConvLayerTest, PoolMustTile) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 4;
  l.out_channels = 4;
  l.pool = 3;
  EXPECT_THROW(l.Output(FmapShape{4, 16, 16}), InvalidArgument);
}

TEST(ConvLayerTest, MacCount) {
  ConvLayer l;
  l.name = "l";
  l.in_channels = 2;
  l.out_channels = 4;
  l.pad = 1;
  // 4 * 2 * 3 * 3 * 8 * 8 = 4608 MACs
  EXPECT_EQ(l.Macs(FmapShape{2, 8, 8}), 4608);
  EXPECT_EQ(l.Ops(FmapShape{2, 8, 8}), 9216);
}

TEST(ModelTest, AppendValidatesChannelChain) {
  Model m("m", FmapShape{3, 8, 8});
  ConvLayer l;
  l.name = "bad";
  l.in_channels = 4;  // mismatch with 3
  l.out_channels = 8;
  EXPECT_THROW(m.Append(l), InvalidArgument);
}

TEST(ModelTest, ShapeInferenceChains) {
  const Model m = BuildTinyCnn();
  EXPECT_EQ(m.InputOf(0).height, 32);
  EXPECT_EQ(m.OutputOf(0).height, 16);  // pool2
  EXPECT_EQ(m.OutputOf(2).channels, 64);
  EXPECT_EQ(m.OutputOf(2).height, 4);
}

TEST(ModelTest, FcFlattensInput) {
  const Model m = BuildTinyCnn();
  const int fc = m.num_layers() - 1;
  EXPECT_TRUE(m.layer(fc).is_fc);
  EXPECT_EQ(m.InputOf(fc).channels, 64 * 4 * 4);
  EXPECT_EQ(m.InputOf(fc).height, 1);
  EXPECT_EQ(m.OutputShape().channels, 10);
}

TEST(ModelTest, Vgg16Structure) {
  const Model m = BuildVgg16();
  EXPECT_EQ(m.num_layers(), 16);  // 13 conv + 3 fc
  EXPECT_EQ(m.OutputShape().channels, 1000);
  // conv5_3 output after pool: 512 x 7 x 7
  EXPECT_EQ(m.OutputOf(12).channels, 512);
  EXPECT_EQ(m.OutputOf(12).height, 7);
}

TEST(ModelTest, Vgg16OpCountMatchesLiterature) {
  // VGG16 is ~30.9 GOP end to end (~30.7 GOP conv-only), the number used
  // for all Table 4 GOPS calculations.
  const Model full = BuildVgg16();
  const Model conv = BuildVgg16ConvOnly();
  EXPECT_NEAR(static_cast<double>(full.TotalOps()), 30.94e9, 0.1e9);
  EXPECT_NEAR(static_cast<double>(conv.TotalOps()), 30.69e9, 0.1e9);
}

TEST(ModelTest, AlexNetStyleBuilds) {
  const Model m = BuildAlexNetStyle();
  EXPECT_GT(m.TotalOps(), 0);
  EXPECT_EQ(m.layer(0).kernel_h, 11);
  EXPECT_EQ(m.layer(1).kernel_h, 5);
  EXPECT_EQ(m.OutputShape().channels, 256);
}

TEST(ModelTest, SummaryMentionsEveryLayer) {
  const Model m = BuildTinyCnn();
  const std::string s = m.Summary();
  for (int i = 0; i < m.num_layers(); ++i) {
    EXPECT_NE(s.find(m.layer(i).name), std::string::npos) << m.layer(i).name;
  }
}

// --- graph IR: explicit input edges + residual edges ---

TEST(ModelTest, DuplicateLayerNamesRejected) {
  Model m("m", FmapShape{3, 8, 8});
  ConvLayer l;
  l.name = "c";
  l.in_channels = 3;
  l.out_channels = 3;
  m.Append(l);
  EXPECT_THROW(m.Append(l), InvalidArgument);
}

TEST(ModelTest, FromEdgeBranchesFromNamedLayer) {
  Model m("m", FmapShape{3, 8, 8});
  ConvLayer stem;
  stem.name = "stem";
  stem.in_channels = 3;
  stem.out_channels = 8;
  m.Append(stem);
  ConvLayer a;
  a.name = "a";
  a.in_channels = 8;
  a.out_channels = 16;
  m.Append(a);
  ConvLayer branch;  // reads stem, not a
  branch.name = "branch";
  branch.in_channels = 8;
  branch.out_channels = 4;
  branch.from = "stem";
  m.Append(branch);
  EXPECT_EQ(m.input_index(0), -1);
  EXPECT_EQ(m.input_index(1), 0);
  EXPECT_EQ(m.input_index(2), 0);
  EXPECT_EQ(m.InputOf(2).channels, 8);
  EXPECT_EQ(m.OutputOf(2).channels, 4);
}

TEST(ModelTest, FromEdgeUnknownNameRejected) {
  Model m("m", FmapShape{3, 8, 8});
  ConvLayer l;
  l.name = "c";
  l.in_channels = 3;
  l.out_channels = 3;
  l.from = "nope";
  EXPECT_THROW(m.Append(l), InvalidArgument);
}

TEST(ModelTest, ResidualEdgeValidatesShape) {
  Model m("m", FmapShape{4, 8, 8});
  ConvLayer a;
  a.name = "a";
  a.in_channels = 4;
  a.out_channels = 8;
  m.Append(a);
  ConvLayer bad;  // 16 channels cannot add an 8-channel skip
  bad.name = "bad";
  bad.in_channels = 8;
  bad.out_channels = 16;
  bad.add = "a";
  EXPECT_THROW(m.Append(bad), InvalidArgument);
  ConvLayer good;
  good.name = "good";
  good.in_channels = 8;
  good.out_channels = 8;
  good.relu = true;
  good.add = "a";
  m.Append(good);
  EXPECT_EQ(m.residual_index(1), 0);
  EXPECT_TRUE(m.layer(1).has_residual());
}

TEST(ModelTest, ResidualIntoPooledLayerRejected) {
  Model m("m", FmapShape{4, 8, 8});
  ConvLayer a;
  a.name = "a";
  a.in_channels = 4;
  a.out_channels = 8;
  m.Append(a);
  ConvLayer pooled;
  pooled.name = "pooled";
  pooled.in_channels = 8;
  pooled.out_channels = 8;
  pooled.pool = 2;
  pooled.add = "a";
  try {
    m.Append(pooled);
    FAIL() << "pooled residual layer must be rejected";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("pooled"), std::string::npos)
        << e.what();
  }
}

TEST(ConvLayerTest, FcCanonicalFormValidated) {
  ConvLayer fc;
  fc.name = "fc";
  fc.in_channels = 64;
  fc.out_channels = 10;
  fc.is_fc = true;
  fc.kernel_h = fc.kernel_w = 1;
  fc.stride = 1;
  fc.pad = 0;
  fc.pool = 1;
  fc.Validate();  // canonical 1x1-on-1x1 form is fine

  ConvLayer bad_kernel = fc;
  bad_kernel.kernel_h = bad_kernel.kernel_w = 3;
  EXPECT_THROW(bad_kernel.Validate(), InvalidArgument);
  ConvLayer bad_stride = fc;
  bad_stride.stride = 2;
  EXPECT_THROW(bad_stride.Validate(), InvalidArgument);
  ConvLayer bad_pad = fc;
  bad_pad.pad = 1;
  EXPECT_THROW(bad_pad.Validate(), InvalidArgument);
  ConvLayer bad_pool = fc;
  bad_pool.pool = 2;
  EXPECT_THROW(bad_pool.Validate(), InvalidArgument);
  ConvLayer bad_res = fc;
  bad_res.add = "skip";
  EXPECT_THROW(bad_res.Validate(), InvalidArgument);
  // FC layers always consume the chain-previous layer: a from= edge could
  // not round-trip through the text writer, so it is rejected outright.
  ConvLayer bad_from = fc;
  bad_from.from = "earlier";
  EXPECT_THROW(bad_from.Validate(), InvalidArgument);
}

TEST(ModelTest, ResNet18StructureAndOps) {
  const Model m = BuildResNet18();
  // stem + 8 basic blocks (2 convs each) + 3 projections + fc.
  EXPECT_EQ(m.num_layers(), 21);
  EXPECT_EQ(m.OutputShape().channels, 1000);
  // Real ResNet-18 is ~3.6 GOP; our variant (projection at 3 transitions)
  // lands just above it.
  EXPECT_NEAR(static_cast<double>(m.TotalOps()), 3.68e9, 0.15e9);
  // Every block's second conv carries a residual edge.
  int residual_layers = 0;
  for (int i = 0; i < m.num_layers(); ++i) {
    if (m.layer(i).has_residual()) ++residual_layers;
  }
  EXPECT_EQ(residual_layers, 8);
  // The first downsampling block: bodya and proj both branch from the
  // previous block output, and bodyb adds the projection.
  const int proj = m.IndexOf("conv3_1p");
  const int bodya = m.IndexOf("conv3_1a");
  const int bodyb = m.IndexOf("conv3_1b");
  ASSERT_GE(proj, 0);
  EXPECT_EQ(m.input_index(proj), m.input_index(bodya));
  EXPECT_EQ(m.residual_index(bodyb), proj);
  EXPECT_FALSE(m.layer(proj).relu) << "projection feeds the add un-rectified";
}

TEST(ModelTest, TinyResidualBlockShapes) {
  const Model m = BuildTinyResidualBlock();
  EXPECT_EQ(m.num_layers(), 4);
  EXPECT_EQ(m.residual_index(m.IndexOf("bodyb")), m.IndexOf("proj"));
  EXPECT_EQ(m.OutputShape(), (FmapShape{32, 7, 7}));
}

TEST(ModelTest, SingleConvBuilderSamePadDefault) {
  const Model m = BuildSingleConv(3, 8, 16, 16, 5);
  EXPECT_EQ(m.layer(0).pad, 2);
  EXPECT_EQ(m.OutputShape().height, 16);
}

TEST(ModelTest, EmptyModelOutputThrows) {
  Model m("empty", FmapShape{1, 1, 1});
  EXPECT_THROW(m.OutputShape(), InvalidArgument);
}

}  // namespace
}  // namespace hdnn
