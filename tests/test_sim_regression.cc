// Bit-exactness regression tests for the flat-scratch simulator COMP
// datapath: a mixed Spatial/Winograd model runs through the optimized
// simulator and must match (a) the golden refconv/winograd references
// computed fresh each run, and (b) output vectors captured from the
// pre-refactor simulator (vector-of-vectors scratch, per-element slab
// checks). (b) pins the exact integer semantics: if a change is
// "consistently wrong" — altering the simulator and reference together —
// the captured constants still catch it.
#include <gtest/gtest.h>

#include <cstdint>

#include "nn/builders.h"
#include "tests/testing_util.h"

namespace hdnn {
namespace {

using ::hdnn::testing::RunEndToEnd;
using ::hdnn::testing::TestConfig;
using ::hdnn::testing::TestSpec;

/// FNV-1a over the output tensor's int16 elements, low byte first.
std::uint64_t Fnv1a(const Tensor<std::int16_t>& t) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::int64_t i = 0; i < t.elements(); ++i) {
    const std::uint16_t v = static_cast<std::uint16_t>(t.flat(i));
    for (int b = 0; b < 2; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

/// Three layers covering both CONV modes, both dataflows, ReLU, pooling and
/// the Winograd<->Spatial layout transforms between consecutive layers.
Model MixedModel() {
  Model m("regression_mixed", FmapShape{8, 14, 14});
  ConvLayer l1;
  l1.name = "wino_is";
  l1.in_channels = 8;
  l1.out_channels = 16;
  l1.relu = true;
  m.Append(l1);
  ConvLayer l2;
  l2.name = "spat_ws";
  l2.in_channels = 16;
  l2.out_channels = 16;
  l2.pool = 2;
  m.Append(l2);
  ConvLayer l3;
  l3.name = "wino_ws";
  l3.in_channels = 16;
  l3.out_channels = 8;
  l3.relu = true;
  m.Append(l3);
  return m;
}

std::vector<LayerMapping> MixedMapping() {
  return {
      {ConvMode::kWinograd, Dataflow::kInputStationary},
      {ConvMode::kSpatial, Dataflow::kWeightStationary},
      {ConvMode::kWinograd, Dataflow::kWeightStationary},
  };
}

/// Captured from the pre-refactor simulator (seed 11, TestConfig geometry).
/// Do NOT regenerate these from a current build to make a failure go away:
/// they are the contract that optimisation work preserves the original
/// integer semantics.
struct CapturedOutput {
  std::int64_t elements;
  std::uint64_t fnv1a;
  std::int16_t first8[8];
  std::int16_t last4[4];
};

constexpr CapturedOutput kCapturedPt4 = {
    392,
    0xbe6daf022dc5627eull,
    {268, 62, 187, 165, 235, 105, 0, 0},
    {177, 0, 0, 0},
};
constexpr CapturedOutput kCapturedPt6 = {
    392,
    0x919159783e8f94a5ull,
    {272, 46, 200, 174, 251, 111, 0, 0},
    {153, 0, 0, 0},
};

class MixedModelRegression : public ::testing::TestWithParam<int> {};

TEST_P(MixedModelRegression, MatchesGoldenAndCapturedVectors) {
  const int pt = GetParam();
  const CapturedOutput& captured = pt == 4 ? kCapturedPt4 : kCapturedPt6;
  auto r = RunEndToEnd(MixedModel(), TestConfig(pt), TestSpec(),
                       MixedMapping(), /*seed=*/11);

  // (a) Fresh golden reference.
  EXPECT_EQ(r.sim_out, r.golden_out);

  // (b) Pre-refactor captured vectors.
  ASSERT_EQ(r.sim_out.elements(), captured.elements);
  EXPECT_EQ(Fnv1a(r.sim_out), captured.fnv1a)
      << "simulator output diverged from the pre-refactor capture";
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(r.sim_out.flat(i), captured.first8[i]) << "element " << i;
  }
  for (int i = 0; i < 4; ++i) {
    const std::int64_t idx = captured.elements - 4 + i;
    EXPECT_EQ(r.sim_out.flat(idx), captured.last4[i]) << "element " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(BothTileSizes, MixedModelRegression,
                         ::testing::Values(4, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "pt" + std::to_string(info.param);
                         });

// The Runtime now keeps its DramModel and Accelerator (with all COMP
// scratch arenas) alive across Execute calls. Repeated executions must be
// bit- and cycle-identical to the first — i.e. arena reuse must be
// invisible.
TEST(RuntimeReuseTest, RepeatedExecutesAreBitAndCycleIdentical) {
  const Model m = MixedModel();
  const AccelConfig cfg = TestConfig(4);
  const FpgaSpec spec = TestSpec();
  const Compiler compiler(cfg, spec);
  const CompiledModel cm = compiler.Compile(m, MixedMapping());
  const ModelWeightsQ weights = SyntheticWeights(m, 11);
  const Tensor<std::int16_t> input =
      ::hdnn::testing::MakeInput(m.InputOf(0), 12);

  Runtime runtime(cfg, spec);
  const RunReport first = runtime.Execute(m, cm, weights, input);
  for (int i = 0; i < 3; ++i) {
    const RunReport again = runtime.Execute(m, cm, weights, input);
    EXPECT_EQ(again.output, first.output) << "repeat " << i;
    EXPECT_EQ(again.stats.total_cycles, first.stats.total_cycles);
    EXPECT_EQ(again.stats.dram_words_read, first.stats.dram_words_read);
    EXPECT_EQ(again.stats.macs_executed, first.stats.macs_executed);
  }

  // Interleaving a different program through the same Runtime must not
  // perturb a later re-run of the original (stale buffer/arena contents
  // must never leak between programs).
  const Model other = ::hdnn::BuildSingleConv(4, 8, 10, 10, 3);
  const std::vector<LayerMapping> other_map{
      {ConvMode::kSpatial, Dataflow::kInputStationary}};
  const CompiledModel other_cm = compiler.Compile(other, other_map);
  runtime.Execute(other, other_cm, SyntheticWeights(other, 3),
                  ::hdnn::testing::MakeInput(other.InputOf(0), 4));
  const RunReport after = runtime.Execute(m, cm, weights, input);
  EXPECT_EQ(after.output, first.output);
  EXPECT_EQ(after.stats.total_cycles, first.stats.total_cycles);
}

TEST(DramModelResetTest, ResetZeroesAndResizesReusingStorage) {
  DramModel dram(64);
  dram.Write(10, 1234);
  dram.Allocate(32);
  EXPECT_EQ(dram.allocated_words(), 32);

  dram.Reset(128);
  EXPECT_EQ(dram.size_words(), 128);
  EXPECT_EQ(dram.allocated_words(), 0);
  EXPECT_EQ(dram.words_written(), 0);
  EXPECT_EQ(dram.Read(10), 0) << "Reset must zero previous contents";

  dram.Reset(16);
  EXPECT_EQ(dram.size_words(), 16);
  EXPECT_THROW(dram.Read(16), Error);
  EXPECT_THROW(dram.Reset(0), Error);
}

}  // namespace
}  // namespace hdnn
