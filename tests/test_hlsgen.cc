#include <gtest/gtest.h>

#include "hlsgen/hls_config_gen.h"
#include "platform/fpga_spec.h"

namespace hdnn {
namespace {

AccelConfig PaperVu9pConfig() {
  AccelConfig cfg;
  cfg.pi = 4;
  cfg.po = 4;
  cfg.pt = 6;
  cfg.ni = 6;
  return cfg;
}

TEST(HlsConfigGenTest, HeaderContainsAllParallelFactors) {
  const std::string h = GenerateHlsConfigHeader(PaperVu9pConfig(), Vu9pSpec());
  EXPECT_NE(h.find("#define HDNN_PI 4"), std::string::npos);
  EXPECT_NE(h.find("#define HDNN_PO 4"), std::string::npos);
  EXPECT_NE(h.find("#define HDNN_PT 6"), std::string::npos);
  EXPECT_NE(h.find("#define HDNN_WINO_M 4"), std::string::npos);
  EXPECT_NE(h.find("#define HDNN_NI 6"), std::string::npos);
  EXPECT_NE(h.find("#define HDNN_INSTR_WIDTH 128"), std::string::npos);
}

TEST(HlsConfigGenTest, HeaderHasIncludeGuard) {
  const std::string h = GenerateHlsConfigHeader(PaperVu9pConfig(), Vu9pSpec());
  EXPECT_NE(h.find("#ifndef HYBRIDDNN_CONFIG_H_"), std::string::npos);
  EXPECT_NE(h.find("#endif"), std::string::npos);
}

TEST(HlsConfigGenTest, PartitionPragmasMatchTable1) {
  const std::string h = GenerateHlsConfigHeader(PaperVu9pConfig(), Vu9pSpec());
  // Winograd physical maxima: in = PI*PT^2 = 144, wgt = PI*PO*PT^2 = 576.
  EXPECT_NE(h.find("array_partition variable=in_buf cyclic factor=144"),
            std::string::npos);
  EXPECT_NE(h.find("array_partition variable=wgt_buf cyclic factor=576"),
            std::string::npos);
}

TEST(HlsConfigGenTest, InvalidConfigRejected) {
  AccelConfig bad = PaperVu9pConfig();
  bad.pt = 5;
  EXPECT_THROW(GenerateHlsConfigHeader(bad, Vu9pSpec()), InvalidArgument);
}

TEST(BuildSummaryTest, MentionsPlatformAndResources) {
  const std::string s = GenerateBuildSummary(PaperVu9pConfig(), Vu9pSpec());
  EXPECT_NE(s.find("vu9p"), std::string::npos);
  EXPECT_NE(s.find("2 per die"), std::string::npos);  // 6 instances, 3 dies
  EXPECT_NE(s.find("analytical"), std::string::npos);
  EXPECT_NE(s.find("implementation"), std::string::npos);
}

}  // namespace
}  // namespace hdnn
